package action

import (
	"encoding/json"
	"sort"
	"strings"
	"sync"
	"testing"

	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/greedy"
)

// ---------------------------------------------------------------------------
// Fixture: one small engine shared by every test in the package.

var (
	engOnce sync.Once
	engFix  *core.Engine
	engErr  error
)

func testEngine(t testing.TB) *core.Engine {
	t.Helper()
	engOnce.Do(func() {
		d, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 400, Seed: 42})
		if err != nil {
			engErr = err
			return
		}
		cfg := core.DefaultPipelineConfig()
		cfg.MinSupportFrac = 0.03
		engFix, engErr = core.Build(d, cfg)
	})
	if engErr != nil {
		t.Fatal(engErr)
	}
	return engFix
}

// detCfg is a deterministic per-step config: no wall-clock cutoff, so
// identical inputs always select identical groups.
func detCfg() greedy.Config {
	cfg := greedy.DefaultConfig()
	cfg.TimeLimit = 0
	return cfg
}

func newTestSession(t testing.TB) *Session {
	t.Helper()
	return New(testEngine(t), detCfg())
}

// ---------------------------------------------------------------------------
// JSON codec: strictness in both directions.

func TestActionJSONRoundTrip(t *testing.T) {
	cases := []Action{
		{Op: Start},
		{Op: StartFrom, Groups: []int{3, 1, 4}},
		{Op: Explore, Group: 0},
		{Op: Explore, Group: 17},
		{Op: Backtrack, Step: 0},
		{Op: Focus, Group: 2, Class: "gender"},
		{Op: Focus, Group: 2},
		{Op: Brush, Attr: "gender", Values: []string{"female"}},
		{Op: Brush, Attr: "gender"}, // clear
		{Op: Unlearn, Field: "gender", Value: "male"},
		{Op: UnlearnUser, User: "a0042"},
		{Op: BookmarkGroup, Group: 9},
		{Op: BookmarkUser, User: "a0007"},
	}
	for _, a := range cases {
		raw, err := json.Marshal(a)
		if err != nil {
			t.Fatalf("marshal %v: %v", a, err)
		}
		var back Action
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		// Compare via re-marshal (slices vs nil aside, the wire form is
		// the identity that matters).
		raw2, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != string(raw2) {
			t.Fatalf("round trip changed %s -> %s", raw, raw2)
		}
	}
}

func TestActionJSONStrict(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"unknown op", `{"op":"teleport"}`, "unknown op"},
		{"missing op", `{"group":1}`, "unknown op"},
		{"unknown field", `{"op":"explore","group":1,"bogus":2}`, "bogus"},
		{"field on wrong op", `{"op":"start","group":1}`, `does not take field "group"`},
		{"explore without group", `{"op":"explore"}`, `requires field "group"`},
		{"backtrack without step", `{"op":"backtrack"}`, `requires field "step"`},
		{"unlearn without value", `{"op":"unlearn","field":"gender"}`, `requires field "value"`},
		{"brush without attr", `{"op":"brush","values":["x"]}`, `requires field "attr"`},
		{"startFrom empty", `{"op":"startFrom","groups":[]}`, "non-empty"},
		{"bookmarkUser without user", `{"op":"bookmarkUser"}`, `requires field "user"`},
		{"step on explore", `{"op":"explore","group":1,"step":2}`, `does not take field "step"`},
	}
	for _, c := range cases {
		var a Action
		err := json.Unmarshal([]byte(c.in), &a)
		if err == nil {
			t.Errorf("%s: %s accepted", c.name, c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q, want substring %q", c.name, err, c.want)
		}
	}
}

func TestMarshalUnknownOp(t *testing.T) {
	if _, err := json.Marshal(Action{Op: "warp"}); err == nil {
		t.Fatal("marshaling an unknown op succeeded")
	}
}

func TestDecodeLogShapes(t *testing.T) {
	arr := `[{"op":"start"},{"op":"explore","group":1}]`
	acts, err := DecodeLog([]byte(arr))
	if err != nil || len(acts) != 2 {
		t.Fatalf("array log: %v (%d actions)", err, len(acts))
	}
	obj := `{"version":2,"miner":"lcm","numGroups":10,"actions":[{"op":"start"}]}`
	acts, err = DecodeLog([]byte(obj))
	if err != nil || len(acts) != 1 {
		t.Fatalf("object log: %v (%d actions)", err, len(acts))
	}
	if _, err := DecodeLog([]byte(`{"version":2}`)); err == nil {
		t.Fatal("log without actions accepted")
	}
	if _, err := DecodeLog([]byte(`[{"op":"nope"}]`)); err == nil {
		t.Fatal("log with unknown op accepted")
	}
}

// ---------------------------------------------------------------------------
// Dispatcher.

func TestApplyFullVocabulary(t *testing.T) {
	s := newTestSession(t)
	eng := s.Sess.Engine()

	res, err := Apply(s, Action{Op: Start})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diff.ShownAdded) == 0 || res.Diff.Mutations != 1 {
		t.Fatalf("start diff: %+v", res.Diff)
	}
	shown := s.Sess.Shown()

	res, err = Apply(s, Action{Op: Explore, Group: shown[0]})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("explore returned no metrics")
	}
	if !res.Diff.FocalChanged || res.Diff.Focal != shown[0] {
		t.Fatalf("explore diff focal: %+v", res.Diff)
	}
	if len(res.Diff.ContextAdded) == 0 {
		t.Fatal("explore reinforced nothing into the context")
	}
	if res.Diff.HistorySteps != 2 {
		t.Fatalf("history steps = %d, want 2", res.Diff.HistorySteps)
	}

	res, err = Apply(s, Action{Op: Focus, Group: shown[0]})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diff.Focus == nil || res.Diff.Focus.Group != shown[0] {
		t.Fatalf("focus diff: %+v", res.Diff)
	}
	before := res.Diff.Focus.Selected

	attr := eng.Data.Schema.Attrs[0].Name
	val := eng.Data.Schema.Attrs[0].Values[0]
	res, err = Apply(s, Action{Op: Brush, Attr: attr, Values: []string{val}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diff.Focus == nil || res.Diff.Focus.Selected > before {
		t.Fatalf("brush did not narrow the selection: %+v", res.Diff)
	}
	if _, err := Apply(s, Action{Op: Brush, Attr: attr}); err != nil {
		t.Fatalf("clear brush: %v", err)
	}

	if _, err := Apply(s, Action{Op: Unlearn, Field: "gender", Value: "male"}); err != nil {
		t.Fatal(err)
	}
	uid := eng.Data.Users[3].ID
	res, err = Apply(s, Action{Op: BookmarkUser, User: uid})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diff.MemoUsersAdded) != 1 || res.Diff.MemoUsersAdded[0] != uid {
		t.Fatalf("bookmarkUser diff: %+v", res.Diff)
	}
	res, err = Apply(s, Action{Op: BookmarkGroup, Group: shown[0]})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diff.MemoGroupsAdded) != 1 {
		t.Fatalf("bookmarkGroup diff: %+v", res.Diff)
	}
	if _, err := Apply(s, Action{Op: UnlearnUser, User: uid}); err != nil {
		t.Fatal(err)
	}

	// Explore closes the focus view.
	if _, err := Apply(s, Action{Op: Explore, Group: s.Sess.Shown()[0]}); err != nil {
		t.Fatal(err)
	}
	if s.Focus != nil {
		t.Fatal("explore left the focus view open")
	}

	res, err = Apply(s, Action{Op: Backtrack, Step: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diff.Focal != -1 || res.Diff.HistorySteps != 1 {
		t.Fatalf("backtrack diff: %+v", res.Diff)
	}
	// Memo survives backtrack.
	if len(res.Diff.MemoGroupsRemoved) != 0 || len(res.Diff.MemoUsersRemoved) != 0 {
		t.Fatalf("backtrack touched the memo: %+v", res.Diff)
	}

	// StartFrom resets memo: removals must be reported.
	res, err = Apply(s, Action{Op: StartFrom, Groups: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diff.MemoGroupsRemoved) != 1 || len(res.Diff.MemoUsersRemoved) != 1 {
		t.Fatalf("startFrom memo reset not reported: %+v", res.Diff)
	}
	if got := s.Sess.Shown(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("startFrom shown = %v", got)
	}

	if int(s.Mutations) != len(s.Log) {
		t.Fatalf("mutations %d != log length %d", s.Mutations, len(s.Log))
	}
}

func TestApplyErrorsLeaveCountersAlone(t *testing.T) {
	s := newTestSession(t)
	if _, err := Apply(s, Action{Op: Start}); err != nil {
		t.Fatal(err)
	}
	cases := []Action{
		{Op: "bogus"},
		{Op: Explore, Group: -1},
		{Op: Explore, Group: 1 << 30},
		{Op: Backtrack, Step: 99},
		{Op: Focus, Group: -2},
		{Op: Brush, Attr: "gender", Values: []string{"female"}}, // no focus open
		{Op: Unlearn, Field: "nope", Value: "x"},
		{Op: UnlearnUser, User: "ghost"},
		{Op: BookmarkGroup, Group: -1},
		{Op: BookmarkUser, User: "ghost"},
		{Op: StartFrom, Groups: []int{-1}},
		// Empty StartFrom must fail in Apply, not just in the codec: an
		// applied action lands in the log, and the log must re-decode.
		{Op: StartFrom},
	}
	for _, a := range cases {
		if _, err := Apply(s, a); err == nil {
			t.Errorf("%v: applied without error", a)
		}
	}
	if s.Mutations != 1 || len(s.Log) != 1 {
		t.Fatalf("failed actions moved counters: mutations=%d log=%d", s.Mutations, len(s.Log))
	}
}

// TestApplyQuietMatchesApply: the quiet variant must produce the same
// state transitions, log and counters — it only skips the Diff.
func TestApplyQuietMatchesApply(t *testing.T) {
	eng := testEngine(t)
	loud, quiet := New(eng, detCfg()), New(eng, detCfg())
	attr := eng.Data.Schema.Attrs[0].Name
	val := eng.Data.Schema.Attrs[0].Values[0]
	acts := []Action{
		{Op: Start},
		{Op: Explore, Group: 0},
		{Op: Focus, Group: 0},
		{Op: Brush, Attr: attr, Values: []string{val}},
		{Op: Unlearn, Field: "gender", Value: "male"},
		{Op: BookmarkGroup, Group: 0},
	}
	for _, a := range acts {
		if _, err := Apply(loud, a); err != nil {
			t.Fatalf("Apply %v: %v", a, err)
		}
		if err := ApplyQuiet(quiet, a); err != nil {
			t.Fatalf("ApplyQuiet %v: %v", a, err)
		}
	}
	lj, _ := json.Marshal(captureFull(loud).shown)
	qj, _ := json.Marshal(captureFull(quiet).shown)
	if string(lj) != string(qj) {
		t.Fatalf("shown diverged: %s vs %s", lj, qj)
	}
	if loud.Mutations != quiet.Mutations || len(loud.Log) != len(quiet.Log) {
		t.Fatalf("counters diverged: %d/%d vs %d/%d",
			loud.Mutations, len(loud.Log), quiet.Mutations, len(quiet.Log))
	}
	if quiet.Focus == nil || quiet.Focus.SelectedCount() != loud.Focus.SelectedCount() {
		t.Fatal("focus state diverged")
	}
	// Quiet batch reports the same failing positions.
	err := ApplyAllQuiet(quiet, []Action{{Op: Start}, {Op: Explore, Group: -1}})
	var be *BatchError
	if !errorsAs(err, &be) || be.Index != 1 {
		t.Fatalf("quiet batch error %v, want BatchError at 1", err)
	}
}

func TestApplyAllErrorPosition(t *testing.T) {
	s := newTestSession(t)
	acts := []Action{
		{Op: Start},
		{Op: Explore, Group: 0},
		{Op: Explore, Group: -5}, // fails at index 2
		{Op: Start},
	}
	results, err := ApplyAll(s, acts)
	if err == nil {
		t.Fatal("bad batch applied")
	}
	var be *BatchError
	if !errorsAs(err, &be) {
		t.Fatalf("error %T is not a BatchError", err)
	}
	if be.Index != 2 {
		t.Fatalf("failing index %d, want 2", be.Index)
	}
	if len(results) != 2 {
		t.Fatalf("%d results for the applied prefix, want 2", len(results))
	}
	if s.Mutations != 2 {
		t.Fatalf("mutations = %d after prefix, want 2", s.Mutations)
	}
}

// errorsAs avoids importing errors just for one assertion.
func errorsAs(err error, target **BatchError) bool {
	for err != nil {
		if be, ok := err.(*BatchError); ok {
			*target = be
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestDiffPinnedAgainstFullRecompute drives a varied trail and checks
// every returned diff against an independent recompute from full
// before/after snapshots — the contract the server's batch endpoint
// relies on.
func TestDiffPinnedAgainstFullRecompute(t *testing.T) {
	s := newTestSession(t)
	if _, err := Apply(s, Action{Op: Start}); err != nil {
		t.Fatal(err)
	}
	eng := s.Sess.Engine()
	attr := eng.Data.Schema.Attrs[0].Name
	val := eng.Data.Schema.Attrs[0].Values[0]
	trail := []Action{
		{Op: Explore, Group: s.Sess.Shown()[0]},
		{Op: Focus, Group: s.Sess.Shown()[0]},
		{Op: Brush, Attr: attr, Values: []string{val}},
		{Op: Unlearn, Field: "gender", Value: "male"},
		{Op: BookmarkGroup, Group: 0},
		{Op: BookmarkUser, User: eng.Data.Users[1].ID},
		{Op: Backtrack, Step: 0},
		{Op: Start},
	}
	for i, a := range trail {
		if a.Op == Explore {
			a.Group = s.Sess.Shown()[0]
		}
		before := captureFull(s)
		res, err := Apply(s, a)
		if err != nil {
			t.Fatalf("step %d (%v): %v", i, a, err)
		}
		after := captureFull(s)
		d := res.Diff
		if added, removed := setDiffInt(before.shown, after.shown); !sameInts(d.ShownAdded, added) || !sameInts(d.ShownRemoved, removed) {
			t.Fatalf("step %d: shown diff %v/%v, recompute %v/%v", i, d.ShownAdded, d.ShownRemoved, added, removed)
		}
		if (d.FocalChanged != (before.focal != after.focal)) || d.Focal != after.focal {
			t.Fatalf("step %d: focal diff %+v, before %d after %d", i, d, before.focal, after.focal)
		}
		if added, removed := setDiffStr(before.context, after.context); !sameStrs(d.ContextAdded, added) || !sameStrs(d.ContextRemoved, removed) {
			t.Fatalf("step %d: context diff %v/%v, recompute %v/%v", i, d.ContextAdded, d.ContextRemoved, added, removed)
		}
		if added, removed := setDiffInt(before.memoG, after.memoG); !sameInts(d.MemoGroupsAdded, added) || !sameInts(d.MemoGroupsRemoved, removed) {
			t.Fatalf("step %d: memo group diff %v/%v, recompute %v/%v", i, d.MemoGroupsAdded, d.MemoGroupsRemoved, added, removed)
		}
		if added, removed := setDiffStr(before.memoU, after.memoU); !sameStrs(d.MemoUsersAdded, added) || !sameStrs(d.MemoUsersRemoved, removed) {
			t.Fatalf("step %d: memo user diff %v/%v, recompute %v/%v", i, d.MemoUsersAdded, d.MemoUsersRemoved, added, removed)
		}
		if d.HistorySteps != after.history {
			t.Fatalf("step %d: history %d, recompute %d", i, d.HistorySteps, after.history)
		}
		if d.Mutations != s.Mutations {
			t.Fatalf("step %d: mutations %d, session %d", i, d.Mutations, s.Mutations)
		}
	}
}

// fullState is the test's own capture of everything Diff covers,
// assembled only from public session accessors.
type fullState struct {
	shown   []int
	focal   int
	context []string
	memoG   []int
	memoU   []string
	history int
}

func captureFull(s *Session) fullState {
	st := fullState{
		shown:   s.Sess.Shown(),
		focal:   s.Sess.Focal(),
		history: len(s.Sess.History()),
		memoG:   s.Sess.Memo().Groups(),
	}
	for _, e := range s.Sess.Context(ContextTop) {
		st.context = append(st.context, e.Label)
	}
	data := s.Sess.Engine().Data
	for _, u := range s.Sess.Memo().Users() {
		st.memoU = append(st.memoU, data.Users[u].ID)
	}
	return st
}

// setDiffInt / setDiffStr are the test's independent set-difference
// implementations (order-insensitive; the assertions sort).
func setDiffInt(before, after []int) (added, removed []int) {
	b := map[int]bool{}
	for _, x := range before {
		b[x] = true
	}
	a := map[int]bool{}
	for _, x := range after {
		a[x] = true
		if !b[x] {
			added = append(added, x)
		}
	}
	for _, x := range before {
		if !a[x] {
			removed = append(removed, x)
		}
	}
	return
}

func setDiffStr(before, after []string) (added, removed []string) {
	b := map[string]bool{}
	for _, x := range before {
		b[x] = true
	}
	a := map[string]bool{}
	for _, x := range after {
		a[x] = true
		if !b[x] {
			added = append(added, x)
		}
	}
	for _, x := range before {
		if !a[x] {
			removed = append(removed, x)
		}
	}
	return
}

func sameInts(a, b []int) bool {
	x := append([]int(nil), a...)
	y := append([]int(nil), b...)
	sort.Ints(x)
	sort.Ints(y)
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

func sameStrs(a, b []string) bool {
	x := append([]string(nil), a...)
	y := append([]string(nil), b...)
	sort.Strings(x)
	sort.Strings(y)
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}
