package action

import (
	"fmt"
	"time"

	"vexus/internal/core"
	"vexus/internal/greedy"
)

// ContextTop is how many CONTEXT entries the exploration surfaces
// display and diff (the server's state DTO and Diff context deltas use
// the same window, so a diff never reports a change the full state
// would not show).
const ContextTop = 8

// Session is the complete per-explorer state every frontend
// manipulates: the core exploration session, the open STATS focus view
// (nil when none), the mutation counter behind state ETags, and the
// append-only log of successfully applied actions — the full SAVE
// trail. Like core.Session, it is not safe for concurrent use; the
// server serializes access per session.
type Session struct {
	Sess *core.Session
	// Focus is the open STATS view; Explore, Backtrack and Start
	// close it (the displayed groups changed under it).
	Focus *core.FocusView
	// Mutations counts successfully applied actions. The server's
	// /api/state ETag is derived from it, and every Diff carries it, so
	// a client consuming diffs always knows its current validator.
	Mutations uint64
	// Log is the trail of applied actions, oldest first. Save writes
	// it; Load rebuilds state by replaying it.
	Log []Action
	// OnDiff, when non-nil, is invoked after every successfully applied
	// action with its Result — the fan-out hook behind server-push diff
	// streams. Setting it forces Diff computation even on the quiet
	// paths (ApplyQuiet, Load's replay), so a replayed session's hook
	// observes exactly the Diff sequence the original applied live:
	// that is what lets a migrated session serve Last-Event-ID resumes
	// from its replayed history. The hook runs under whatever lock
	// guards the session and must not block.
	OnDiff func(Result)
	// Observe, when non-nil, receives every successfully applied
	// action's op and wall-clock apply duration — the telemetry hook
	// behind per-action-type latency histograms. Timing is taken only
	// when the hook is set, so un-instrumented sessions (replay,
	// simulation, the deterministic equivalence suites) never read the
	// clock. Like OnDiff it runs under the session's lock and must not
	// block.
	Observe func(op Kind, d time.Duration)
}

// New opens a fresh session over the engine. No action has been
// applied yet — callers normally Apply a Start first.
func New(eng *core.Engine, cfg greedy.Config) *Session {
	return Wrap(eng.NewSession(cfg))
}

// Wrap lifts an existing core.Session into the action layer. The log
// starts empty: actions applied before wrapping are not recoverable.
func Wrap(s *core.Session) *Session {
	return &Session{Sess: s}
}

// Metrics is the optimizer outcome of an Explore, stripped to the
// deterministic quality numbers (wall clock stays out of API responses
// so identical explorations produce identical bodies).
type Metrics struct {
	Coverage   float64 `json:"coverage"`
	Diversity  float64 `json:"diversity"`
	Feedback   float64 `json:"feedback"`
	Objective  float64 `json:"objective"`
	Candidates int     `json:"candidates"`
}

// FocusState summarizes the open STATS view after an action: which
// group it is on and how many members pass every brush.
type FocusState struct {
	Group    int `json:"group"`
	Selected int `json:"selected"`
}

// Diff reports what one action changed, computed against the state
// immediately before it. Sets are diffed positionally stable: added in
// after-display order, removed in before-display order.
type Diff struct {
	Op Kind `json:"op"`
	// ShownAdded/ShownRemoved are the GROUPVIZ membership changes.
	ShownAdded   []int `json:"shownAdded,omitempty"`
	ShownRemoved []int `json:"shownRemoved,omitempty"`
	// FocalChanged marks a focal move; Focal is the focal after the
	// action (-1 on the initial display).
	FocalChanged bool `json:"focalChanged,omitempty"`
	Focal        int  `json:"focal"`
	// HistorySteps is the trail length after the action.
	HistorySteps int `json:"historySteps"`
	// ContextAdded/ContextRemoved are label deltas of the top
	// ContextTop CONTEXT entries.
	ContextAdded   []string `json:"contextAdded,omitempty"`
	ContextRemoved []string `json:"contextRemoved,omitempty"`
	// Memo deltas; users as external ids. Removals happen only when
	// Start/StartFrom reset the session.
	MemoGroupsAdded   []int    `json:"memoGroupsAdded,omitempty"`
	MemoGroupsRemoved []int    `json:"memoGroupsRemoved,omitempty"`
	MemoUsersAdded    []string `json:"memoUsersAdded,omitempty"`
	MemoUsersRemoved  []string `json:"memoUsersRemoved,omitempty"`
	// Focus is the open STATS view after the action, nil when none.
	Focus *FocusState `json:"focus,omitempty"`
	// Mutations is the session mutation counter after the action — the
	// number the state ETag derives from.
	Mutations uint64 `json:"mutations"`
}

// Result is the outcome of one applied action.
type Result struct {
	// Metrics is present when the action ran the greedy optimizer
	// (Explore).
	Metrics *Metrics `json:"metrics,omitempty"`
	Diff    Diff     `json:"diff"`
}

// BatchError reports which action of a batch failed; the actions
// before Index were applied and their results stand.
type BatchError struct {
	Index int
	Err   error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("action %d: %v", e.Index, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// snapshot captures the diffable state before an action.
type snapshot struct {
	shown   []int
	focal   int
	context []string
	memoG   []int
	memoU   []int
}

func (s *Session) snap() snapshot {
	ctx := s.Sess.Context(ContextTop)
	labels := make([]string, len(ctx))
	for i, e := range ctx {
		labels[i] = e.Label
	}
	m := s.Sess.Memo()
	return snapshot{
		shown:   s.Sess.Shown(),
		focal:   s.Sess.Focal(),
		context: labels,
		memoG:   m.Groups(),
		memoU:   m.Users(),
	}
}

// diffInts returns after-order additions and before-order removals of
// two id lists treated as sets.
func diffInts(before, after []int) (added, removed []int) {
	in := make(map[int]bool, len(before))
	for _, x := range before {
		in[x] = true
	}
	out := make(map[int]bool, len(after))
	for _, x := range after {
		out[x] = true
		if !in[x] {
			added = append(added, x)
		}
	}
	for _, x := range before {
		if !out[x] {
			removed = append(removed, x)
		}
	}
	return added, removed
}

func diffStrings(before, after []string) (added, removed []string) {
	in := make(map[string]bool, len(before))
	for _, x := range before {
		in[x] = true
	}
	out := make(map[string]bool, len(after))
	for _, x := range after {
		out[x] = true
		if !in[x] {
			added = append(added, x)
		}
	}
	for _, x := range before {
		if !out[x] {
			removed = append(removed, x)
		}
	}
	return added, removed
}

// diffFrom compares the live state against a pre-action snapshot.
func (s *Session) diffFrom(pre snapshot, op Kind) Diff {
	post := s.snap()
	d := Diff{
		Op:           op,
		Focal:        post.focal,
		FocalChanged: post.focal != pre.focal,
		HistorySteps: len(s.Sess.History()),
		Mutations:    s.Mutations,
	}
	d.ShownAdded, d.ShownRemoved = diffInts(pre.shown, post.shown)
	d.ContextAdded, d.ContextRemoved = diffStrings(pre.context, post.context)
	d.MemoGroupsAdded, d.MemoGroupsRemoved = diffInts(pre.memoG, post.memoG)
	uAdded, uRemoved := diffInts(pre.memoU, post.memoU)
	d.MemoUsersAdded = s.userIDs(uAdded)
	d.MemoUsersRemoved = s.userIDs(uRemoved)
	if s.Focus != nil {
		d.Focus = &FocusState{Group: s.Focus.GroupID, Selected: s.Focus.SelectedCount()}
	}
	return d
}

func (s *Session) userIDs(users []int) []string {
	if len(users) == 0 {
		return nil
	}
	data := s.Sess.Engine().Data
	out := make([]string, len(users))
	for i, u := range users {
		out[i] = data.Users[u].ID
	}
	return out
}

// Apply executes one action against the session. On success the action
// is appended to the log, the mutation counter advances, and the
// Result carries the Diff against the pre-action state. On error the
// session is left as the underlying core operation left it (core
// validates operands before mutating) and neither log nor counter
// move.
func Apply(s *Session, a Action) (Result, error) {
	return apply(s, a, true)
}

// ApplyQuiet applies one action without computing its Diff — the
// same dispatch, log append and mutation count as Apply, minus the
// before/after state snapshots (each of which sorts the full feedback
// profile). Replay and simulation paths that discard Results use it;
// anything serving diffs to a client uses Apply.
func ApplyQuiet(s *Session, a Action) error {
	_, err := apply(s, a, false)
	return err
}

// apply is the single dispatcher behind both entry points.
func apply(s *Session, a Action, wantDiff bool) (Result, error) {
	if !a.Op.Valid() {
		return Result{}, fmt.Errorf("action: unknown op %q", a.Op)
	}
	wantDiff = wantDiff || s.OnDiff != nil
	var started time.Time
	if s.Observe != nil {
		started = time.Now()
	}
	var pre snapshot
	if wantDiff {
		pre = s.snap()
	}
	var metrics *Metrics
	switch a.Op {
	case Start:
		s.Sess.Start()
		s.Focus = nil

	case StartFrom:
		// Enforced here, not just in the JSON codec: an applied action
		// always lands in the log, and the log must re-decode — an
		// empty groups list would save as {"op":"startFrom"} and fail
		// to load.
		if len(a.Groups) == 0 {
			return Result{}, fmt.Errorf("action: startFrom requires a non-empty groups list")
		}
		if _, err := s.Sess.StartFrom(a.Groups...); err != nil {
			return Result{}, err
		}
		s.Focus = nil

	case Explore:
		sel, err := s.Sess.Explore(a.Group)
		if err != nil {
			return Result{}, err
		}
		s.Focus = nil
		metrics = &Metrics{
			Coverage:   sel.Coverage,
			Diversity:  sel.Diversity,
			Feedback:   sel.Feedback,
			Objective:  sel.Objective,
			Candidates: sel.Candidates,
		}

	case Backtrack:
		if err := s.Sess.Backtrack(a.Step); err != nil {
			return Result{}, err
		}
		s.Focus = nil

	case Focus:
		fv, err := s.Sess.Focus(a.Group, a.Class)
		if err != nil {
			return Result{}, err
		}
		s.Focus = fv

	case Brush:
		if s.Focus == nil {
			return Result{}, fmt.Errorf("action: no focused group to brush")
		}
		var err error
		if len(a.Values) == 0 {
			err = s.Focus.ClearBrush(a.Attr)
		} else {
			err = s.Focus.Brush(a.Attr, a.Values...)
		}
		if err != nil {
			return Result{}, err
		}

	case Unlearn:
		if err := s.Sess.Unlearn(a.Field, a.Value); err != nil {
			return Result{}, err
		}

	case UnlearnUser:
		if err := s.Sess.UnlearnUser(a.User); err != nil {
			return Result{}, err
		}

	case BookmarkGroup:
		if err := s.Sess.BookmarkGroup(a.Group); err != nil {
			return Result{}, err
		}

	case BookmarkUser:
		u := s.Sess.Engine().Data.UserIndex(a.User)
		if u < 0 {
			return Result{}, fmt.Errorf("action: unknown user %q", a.User)
		}
		if err := s.Sess.BookmarkUser(u); err != nil {
			return Result{}, err
		}
	}
	s.Mutations++
	s.Log = append(s.Log, a)
	res := Result{Metrics: metrics}
	if wantDiff {
		res.Diff = s.diffFrom(pre, a.Op)
	}
	if s.OnDiff != nil {
		s.OnDiff(res)
	}
	if s.Observe != nil {
		s.Observe(a.Op, time.Since(started))
	}
	return res, nil
}

// ApplyAll applies actions in order, stopping at the first failure:
// the returned results cover the applied prefix, and the error is a
// *BatchError carrying the failing position. Actions before the
// failure stay applied — batches are sequences, not transactions.
func ApplyAll(s *Session, acts []Action) ([]Result, error) {
	out := make([]Result, 0, len(acts))
	for i, a := range acts {
		res, err := Apply(s, a)
		if err != nil {
			return out, &BatchError{Index: i, Err: err}
		}
		out = append(out, res)
	}
	return out, nil
}

// ApplyAllQuiet is ApplyAll without diff computation, for replay
// paths: same sequencing, same *BatchError positions.
func ApplyAllQuiet(s *Session, acts []Action) error {
	for i, a := range acts {
		if err := ApplyQuiet(s, a); err != nil {
			return &BatchError{Index: i, Err: err}
		}
	}
	return nil
}
