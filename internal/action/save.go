package action

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// savedLog is the v2 SAVE format: the complete action trail, verbatim.
// Where v1 (internal/core.savedSession) kept only the Explore clicks
// plus final memo/unlearn outcomes — losing Brush, Focus, UnlearnUser
// and the interleaving of unlearns with clicks, and flattening
// Backtrack into whatever trail survived it — v2 replays exactly what
// the explorer did, in order, through the same Apply dispatcher live
// traffic uses.
type savedLog struct {
	Version int `json:"version"`
	// Miner and NumGroups guard against gross engine mismatch, exactly
	// like v1: descriptions are the real identity, so a rebuilt space
	// over identical data replays identically.
	Miner     string   `json:"miner"`
	NumGroups int      `json:"numGroups"`
	Actions   []Action `json:"actions"`
}

// savedSessionV1 mirrors internal/core's v1 on-disk shape for
// backward-compatible loading.
type savedSessionV1 struct {
	Version   int      `json:"version"`
	Miner     string   `json:"miner"`
	NumGroups int      `json:"numGroups"`
	Clicks    []int    `json:"clicks"`
	MemoG     []int    `json:"memoGroups"`
	MemoU     []string `json:"memoUsers"`
	Unlearned []string `json:"unlearnedTerms"`
}

// Save serializes the session's complete action log as a v2 trail.
func (s *Session) Save(w io.Writer) error {
	eng := s.Sess.Engine()
	saved := savedLog{
		Version:   2,
		Miner:     eng.Miner,
		NumGroups: eng.Space.Len(),
		Actions:   s.Log,
	}
	if saved.Actions == nil {
		saved.Actions = []Action{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(saved)
}

// Load restores a saved trail into this (fresh) session by replaying
// its actions through Apply. Both formats load: a v2 file replays its
// action log verbatim; a v1 file (the click-only format of
// internal/core) is first translated into the action vocabulary —
// Start, the unlearns, the clicks in order, then the bookmarks — which
// reproduces exactly the replay core.Session.Load performs. After a
// successful Load the session's log holds the replayed actions, so
// re-saving writes v2 regardless of the input version.
func (s *Session) Load(r io.Reader) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("action: reading saved session: %w", err)
	}
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return fmt.Errorf("action: decoding saved session: %w", err)
	}

	var miner string
	var numGroups int
	var acts []Action
	switch probe.Version {
	case 2:
		var saved savedLog
		if err := json.Unmarshal(raw, &saved); err != nil {
			return fmt.Errorf("action: decoding v2 session: %w", err)
		}
		miner, numGroups, acts = saved.Miner, saved.NumGroups, saved.Actions

	case 1:
		var saved savedSessionV1
		if err := json.Unmarshal(raw, &saved); err != nil {
			return fmt.Errorf("action: decoding v1 session: %w", err)
		}
		miner, numGroups = saved.Miner, saved.NumGroups
		acts = append(acts, Action{Op: Start})
		for _, t := range saved.Unlearned {
			field, value, ok := strings.Cut(t, "=")
			if !ok {
				return fmt.Errorf("action: malformed unlearned term %q", t)
			}
			acts = append(acts, Action{Op: Unlearn, Field: field, Value: value})
		}
		for _, gid := range saved.Clicks {
			acts = append(acts, Action{Op: Explore, Group: gid})
		}
		for _, gid := range saved.MemoG {
			acts = append(acts, Action{Op: BookmarkGroup, Group: gid})
		}
		for _, uid := range saved.MemoU {
			acts = append(acts, Action{Op: BookmarkUser, User: uid})
		}

	default:
		return fmt.Errorf("action: unsupported session version %d", probe.Version)
	}

	eng := s.Sess.Engine()
	if numGroups != eng.Space.Len() {
		return fmt.Errorf("action: saved session has %d groups, engine has %d",
			numGroups, eng.Space.Len())
	}
	if miner != "" && miner != eng.Miner {
		return fmt.Errorf("action: saved session mined with %q, engine with %q",
			miner, eng.Miner)
	}
	s.Log = nil
	s.Mutations = 0
	s.Focus = nil
	if err := ApplyAllQuiet(s, acts); err != nil {
		return fmt.Errorf("action: replaying saved session: %w", err)
	}
	return nil
}
