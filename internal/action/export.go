package action

import (
	"fmt"

	"vexus/internal/core"
	"vexus/internal/greedy"
)

// This file is the migration surface of the action layer: a session is
// fully described by its applied-action log (Save/Load serialize it),
// so moving a session between processes is export + replay. Replay
// re-applies the trail through the same Apply dispatcher live traffic
// uses, which makes the re-applied state deterministic whenever the
// optimizer config is — greedy selection must not be wall-clock
// bounded (greedy.Config.TimeLimit = 0), exactly the precondition the
// repo's save/load replay and worker-equivalence tests already state.

// ExportActions returns a copy of the session's applied-action log,
// oldest first. The copy is safe to serialize or replay after the
// caller releases whatever lock guards the session.
func (s *Session) ExportActions() []Action {
	if len(s.Log) == 0 {
		return nil
	}
	out := make([]Action, len(s.Log))
	copy(out, s.Log)
	return out
}

// Replay builds a fresh session over eng and re-applies the trail.
// After a successful replay the session's log equals the trail and its
// mutation counter equals the trail length — byte-identical state and
// validator to the session the trail was exported from, provided eng
// is bit-identical to the source engine (the store/build determinism
// contract) and cfg is deterministic.
func Replay(eng *core.Engine, cfg greedy.Config, acts []Action) (*Session, error) {
	s := New(eng, cfg)
	if err := ApplyAllQuiet(s, acts); err != nil {
		return nil, fmt.Errorf("action: replaying trail: %w", err)
	}
	return s, nil
}
