package viz

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"vexus/internal/rng"
)

func TestLayoutContainment(t *testing.T) {
	nodes := []Node{
		{ID: 0, Radius: 30}, {ID: 1, Radius: 50}, {ID: 2, Radius: 20},
		{ID: 3, Radius: 40}, {ID: 4, Radius: 25}, {ID: 5, Radius: 35},
		{ID: 6, Radius: 15},
	}
	edges := []Edge{{A: 0, B: 1, Strength: 0.5}, {A: 2, B: 3, Strength: 0.8}}
	cfg := DefaultLayoutConfig()
	out := Layout(nodes, edges, cfg)
	if len(out) != len(nodes) {
		t.Fatalf("layout returned %d nodes", len(out))
	}
	for _, nd := range out {
		if nd.X < nd.Radius-1e-6 || nd.X > cfg.Width-nd.Radius+1e-6 ||
			nd.Y < nd.Radius-1e-6 || nd.Y > cfg.Height-nd.Radius+1e-6 {
			t.Fatalf("node %d out of canvas: (%v, %v) r=%v", nd.ID, nd.X, nd.Y, nd.Radius)
		}
	}
}

func TestLayoutNoOverlap(t *testing.T) {
	// The anti-clutter requirement: k ≤ 7 circles must not overlap.
	nodes := []Node{
		{ID: 0, Radius: 40}, {ID: 1, Radius: 40}, {ID: 2, Radius: 40},
		{ID: 3, Radius: 40}, {ID: 4, Radius: 40}, {ID: 5, Radius: 40},
		{ID: 6, Radius: 40},
	}
	out := Layout(nodes, nil, DefaultLayoutConfig())
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			d := math.Hypot(out[i].X-out[j].X, out[i].Y-out[j].Y)
			if d < out[i].Radius+out[j].Radius-1 {
				t.Fatalf("nodes %d/%d overlap: distance %v", i, j, d)
			}
		}
	}
}

func TestLayoutDeterminism(t *testing.T) {
	nodes := []Node{{ID: 0, Radius: 20}, {ID: 1, Radius: 30}, {ID: 2, Radius: 10}}
	a := Layout(nodes, nil, DefaultLayoutConfig())
	b := Layout(nodes, nil, DefaultLayoutConfig())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("layout not deterministic")
		}
	}
}

func TestLayoutEdgeCases(t *testing.T) {
	if got := Layout(nil, nil, DefaultLayoutConfig()); len(got) != 0 {
		t.Fatal("empty layout")
	}
	single := Layout([]Node{{ID: 0, Radius: 10}}, nil, DefaultLayoutConfig())
	if single[0].X != 360 || single[0].Y != 240 {
		t.Fatalf("single node not centered: %+v", single[0])
	}
	// Bad edges must not panic.
	Layout([]Node{{Radius: 5}, {Radius: 5}}, []Edge{{A: -1, B: 99}, {A: 0, B: 0}}, DefaultLayoutConfig())
}

func TestPropLayoutAlwaysContained(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(uint64(seed) + 1)
		n := 1 + r.Intn(9)
		nodes := make([]Node, n)
		for i := range nodes {
			nodes[i] = Node{ID: i, Radius: 10 + r.Float64()*50}
		}
		var edges []Edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Bool(0.3) {
					edges = append(edges, Edge{A: i, B: j, Strength: r.Float64()})
				}
			}
		}
		cfg := DefaultLayoutConfig()
		cfg.Iterations = 80
		out := Layout(nodes, edges, cfg)
		for _, nd := range out {
			if math.IsNaN(nd.X) || math.IsNaN(nd.Y) {
				return false
			}
			if nd.X < nd.Radius-1e-6 || nd.X > cfg.Width-nd.Radius+1e-6 {
				return false
			}
			if nd.Y < nd.Radius-1e-6 || nd.Y > cfg.Height-nd.Radius+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRadiusForSize(t *testing.T) {
	small := RadiusForSize(1, 1000)
	big := RadiusForSize(1000, 1000)
	if small >= big {
		t.Fatalf("radius not monotone: %v vs %v", small, big)
	}
	if big > 64 || small < 14 {
		t.Fatalf("radius out of bounds: %v / %v", small, big)
	}
	if RadiusForSize(0, 0) < 14 {
		t.Fatal("degenerate size")
	}
}

func TestGroupVizSVG(t *testing.T) {
	svg := GroupVizSVG([]Circle{
		{X: 100, Y: 100, R: 40, Label: "gender=female ∧ topic=db", Title: "412",
			Shares: []float64{0.4, 0.6}},
		{X: 300, Y: 200, R: 20, Label: "plain", Highlight: true},
	}, 0, 0)
	for _, want := range []string{"<svg", "</svg>", "<path", "<title>", "stroke=\"#d62728\""} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q:\n%s", want, svg)
		}
	}
	// Full-share pie degenerates to a circle.
	full := GroupVizSVG([]Circle{{X: 1, Y: 1, R: 5, Shares: []float64{1}}}, 100, 100)
	if !strings.Contains(full, "<circle") {
		t.Fatal("full pie should be a circle")
	}
	// Labels are escaped.
	esc := GroupVizSVG([]Circle{{X: 1, Y: 1, R: 5, Label: "<script>"}}, 100, 100)
	if strings.Contains(esc, "<script>") {
		t.Fatal("label not escaped")
	}
}

func TestHistogramSVG(t *testing.T) {
	svg := HistogramSVG("gender", []string{"female", "male"}, []int{62, 38},
		map[int]bool{0: true}, 0)
	if !strings.Contains(svg, "gender") || !strings.Contains(svg, "62") {
		t.Fatalf("histogram SVG incomplete:\n%s", svg)
	}
	if !strings.Contains(svg, "#3182bd") {
		t.Fatal("selected bin not highlighted")
	}
	// Zero counts render without division by zero.
	empty := HistogramSVG("x", []string{"a"}, []int{0}, nil, 0)
	if !strings.Contains(empty, "<svg") {
		t.Fatal("empty histogram broken")
	}
}

func TestScatterSVG(t *testing.T) {
	svg := ScatterSVG([]ScatterPoint{
		{X: -1, Y: -1, Class: 0, Label: "alice"},
		{X: 1, Y: 1, Class: 1, Label: "bob"},
	}, 0, 0)
	if !strings.Contains(svg, "alice") || !strings.Contains(svg, "circle") {
		t.Fatalf("scatter incomplete:\n%s", svg)
	}
	if got := ScatterSVG(nil, 100, 100); !strings.Contains(got, "<svg") {
		t.Fatal("empty scatter broken")
	}
	// Identical points: no NaN coordinates.
	same := ScatterSVG([]ScatterPoint{{X: 2, Y: 2}, {X: 2, Y: 2}}, 100, 100)
	if strings.Contains(same, "NaN") {
		t.Fatal("NaN in degenerate scatter")
	}
}

func TestTrailSVG(t *testing.T) {
	svg := TrailSVG([]string{"start", "topic=db", "country=fr"}, 0)
	if !strings.Contains(svg, "→") || !strings.Contains(svg, "start") {
		t.Fatalf("trail incomplete:\n%s", svg)
	}
}

func TestColorFor(t *testing.T) {
	if ColorFor(-1) != "#cccccc" {
		t.Fatal("negative class color")
	}
	if ColorFor(0) == ColorFor(1) {
		t.Fatal("classes share colors")
	}
	if ColorFor(0) != ColorFor(len(Palette)) {
		t.Fatal("palette should wrap")
	}
}

func TestASCIIRenderers(t *testing.T) {
	bar := ASCIIBar("female", 10, 20, 20)
	if !strings.Contains(bar, "female") || !strings.Contains(bar, "█") {
		t.Fatalf("bar = %q", bar)
	}
	if b := ASCIIBar("x", 1, 1000, 20); !strings.Contains(b, "█") {
		t.Fatal("nonzero count must draw at least one cell")
	}
	hist := ASCIIHistogram("gender", []string{"f", "m"}, []int{3, 1}, 10)
	if !strings.Contains(hist, "gender") || strings.Count(hist, "\n") != 3 {
		t.Fatalf("hist = %q", hist)
	}
	gtab := ASCIIGroups([]ASCIIGroupRow{
		{Label: "a", Size: 10, Highlight: true},
		{Label: "b", Size: 5},
	}, 10)
	if !strings.Contains(gtab, "●") || !strings.Contains(gtab, "*") {
		t.Fatalf("groups = %q", gtab)
	}
}

func TestTruncate(t *testing.T) {
	if truncate("hello", 10) != "hello" {
		t.Fatal("no-op truncate")
	}
	if got := truncate("hello world", 6); got != "hello…" {
		t.Fatalf("truncate = %q", got)
	}
	if truncate("ab", 1) != "…" {
		t.Fatal("tiny truncate")
	}
}
