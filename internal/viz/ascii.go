package viz

import (
	"fmt"
	"strings"
)

// ASCIIBar renders one histogram row: a label, a bar scaled to width,
// and the count.
func ASCIIBar(label string, count, maxCount, width int) string {
	if width <= 0 {
		width = 40
	}
	if maxCount < 1 {
		maxCount = 1
	}
	n := count * width / maxCount
	if count > 0 && n == 0 {
		n = 1
	}
	return fmt.Sprintf("%-18s %s %d", truncate(label, 18), strings.Repeat("█", n), count)
}

// ASCIIHistogram renders a full labeled histogram.
func ASCIIHistogram(title string, labels []string, counts []int, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxC := 1
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range counts {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		b.WriteString("  " + ASCIIBar(label, c, maxC, width) + "\n")
	}
	return b.String()
}

// ASCIIGroups renders the GROUPVIZ panel as a text table: one row per
// group with a size-scaled bubble sparkline.
func ASCIIGroups(rows []ASCIIGroupRow, width int) string {
	if width <= 0 {
		width = 30
	}
	maxSize := 1
	for _, r := range rows {
		if r.Size > maxSize {
			maxSize = r.Size
		}
	}
	var b strings.Builder
	b.WriteString("  #  size       group\n")
	for i, r := range rows {
		n := r.Size * width / maxSize
		if n == 0 {
			n = 1
		}
		marker := " "
		if r.Highlight {
			marker = "*"
		}
		fmt.Fprintf(&b, "%s%2d  %-9d %s %s\n", marker, i, r.Size,
			strings.Repeat("●", min(n, width)), r.Label)
	}
	return b.String()
}

// ASCIIGroupRow is one terminal GROUPVIZ row.
type ASCIIGroupRow struct {
	Label     string
	Size      int
	Highlight bool
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
