package viz

import (
	"fmt"
	"html"
	"math"
	"strings"
)

// Palette is the categorical color ramp used for attribute coloring
// (color-blind-safe 10-class).
var Palette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// ColorFor returns the palette color of category i.
func ColorFor(i int) string {
	if i < 0 {
		return "#cccccc"
	}
	return Palette[i%len(Palette)]
}

// Circle is one rendered GROUPVIZ group.
type Circle struct {
	X, Y, R float64
	Label   string // hover text (the group description)
	Title   string // short text drawn inside
	// Shares color-codes the circle: a pie of the attribute value
	// distribution (nil = plain fill).
	Shares []float64
	// Highlight draws a focus ring (the clicked group).
	Highlight bool
}

// GroupVizSVG renders the force layout as a self-contained SVG
// element. Width/height default to 720×480 when zero.
func GroupVizSVG(circles []Circle, width, height float64) string {
	if width <= 0 || height <= 0 {
		width, height = 720, 480
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`,
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="#fafafa"/>`)
	for _, c := range circles {
		b.WriteString(`<g>`)
		fmt.Fprintf(&b, `<title>%s</title>`, html.EscapeString(c.Label))
		if len(c.Shares) == 0 {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" fill-opacity="0.85" stroke="#333" stroke-width="1"/>`,
				c.X, c.Y, c.R, ColorFor(0))
		} else {
			pieSVG(&b, c)
		}
		if c.Highlight {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="none" stroke="#d62728" stroke-width="3"/>`,
				c.X, c.Y, c.R+3)
		}
		if c.Title != "" {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" font-size="11" font-family="sans-serif" fill="#111">%s</text>`,
				c.X, c.Y+4, html.EscapeString(c.Title))
		}
		b.WriteString(`</g>`)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// pieSVG draws a circle as pie slices of c.Shares.
func pieSVG(b *strings.Builder, c Circle) {
	start := -math.Pi / 2
	drawn := false
	for i, share := range c.Shares {
		if share <= 0 {
			continue
		}
		end := start + 2*math.Pi*share
		if share >= 0.999 {
			fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" fill-opacity="0.85" stroke="#333" stroke-width="1"/>`,
				c.X, c.Y, c.R, ColorFor(i))
			return
		}
		large := 0
		if end-start > math.Pi {
			large = 1
		}
		x1 := c.X + c.R*math.Cos(start)
		y1 := c.Y + c.R*math.Sin(start)
		x2 := c.X + c.R*math.Cos(end)
		y2 := c.Y + c.R*math.Sin(end)
		fmt.Fprintf(b, `<path d="M%.1f,%.1f L%.1f,%.1f A%.1f,%.1f 0 %d 1 %.1f,%.1f Z" fill="%s" fill-opacity="0.85" stroke="#333" stroke-width="0.5"/>`,
			c.X, c.Y, x1, y1, c.R, c.R, large, x2, y2, ColorFor(i))
		start = end
		drawn = true
	}
	if !drawn {
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#ccc" stroke="#333"/>`, c.X, c.Y, c.R)
	}
}

// HistogramSVG renders labeled bars (one STATS histogram). Selected
// bins draw darker (the brush).
func HistogramSVG(title string, labels []string, counts []int, selected map[int]bool, width float64) string {
	if width <= 0 {
		width = 360
	}
	n := len(counts)
	barH, gap, leftPad := 18.0, 4.0, 110.0
	height := float64(n)*(barH+gap) + 30
	maxC := 1
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f">`, width, height)
	fmt.Fprintf(&b, `<text x="4" y="14" font-size="12" font-weight="bold" font-family="sans-serif">%s</text>`,
		html.EscapeString(title))
	for i := 0; i < n; i++ {
		y := 24 + float64(i)*(barH+gap)
		w := (width - leftPad - 40) * float64(counts[i]) / float64(maxC)
		fill := "#9ecae1"
		if selected != nil && selected[i] {
			fill = "#3182bd"
		}
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		fmt.Fprintf(&b, `<text x="%.0f" y="%.1f" text-anchor="end" font-size="11" font-family="sans-serif">%s</text>`,
			leftPad-6, y+barH-5, html.EscapeString(truncate(label, 16)))
		fmt.Fprintf(&b, `<rect x="%.0f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`,
			leftPad, y, w, barH, fill)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" font-family="sans-serif" fill="#333">%d</text>`,
			leftPad+w+4, y+barH-5, counts[i])
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// ScatterPoint is one Focus-view dot.
type ScatterPoint struct {
	X, Y  float64
	Class int
	Label string
}

// ScatterSVG renders the LDA projection; points are colored by class
// and auto-scaled into the canvas with a margin.
func ScatterSVG(points []ScatterPoint, width, height float64) string {
	if width <= 0 || height <= 0 {
		width, height = 420, 320
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f">`, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="#ffffff" stroke="#ddd"/>`)
	if len(points) > 0 {
		minX, maxX := points[0].X, points[0].X
		minY, maxY := points[0].Y, points[0].Y
		for _, p := range points {
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
		}
		spanX, spanY := maxX-minX, maxY-minY
		if spanX < 1e-9 {
			spanX = 1
		}
		if spanY < 1e-9 {
			spanY = 1
		}
		const m = 20
		for _, p := range points {
			x := m + (p.X-minX)/spanX*(width-2*m)
			y := m + (p.Y-minY)/spanY*(height-2*m)
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s" fill-opacity="0.7"><title>%s</title></circle>`,
				x, y, ColorFor(p.Class), html.EscapeString(p.Label))
		}
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// TrailSVG renders the HISTORY breadcrumb: one box per step with an
// arrow between consecutive steps.
func TrailSVG(steps []string, width float64) string {
	if width <= 0 {
		width = 720
	}
	boxW, boxH, gap := 120.0, 30.0, 28.0
	height := boxH + 16
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f">`, width, height)
	x := 4.0
	for i, s := range steps {
		fmt.Fprintf(&b, `<rect x="%.1f" y="8" width="%.0f" height="%.0f" rx="6" fill="#eef" stroke="#88a"/>`,
			x, boxW, boxH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" font-size="10" font-family="sans-serif">%s</text>`,
			x+boxW/2, 8+boxH/2+4, html.EscapeString(truncate(s, 20)))
		if i < len(steps)-1 {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="14">→</text>`, x+boxW+6, 8+boxH/2+5)
		}
		x += boxW + gap
		if x+boxW > width {
			break
		}
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return "…"
	}
	return s[:n-1] + "…"
}
