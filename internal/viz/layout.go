// Package viz renders the VEXUS visual modules (Fig. 2): the GROUPVIZ
// force-directed circle layout, histograms for STATS, the LDA scatter
// of the Focus view, and the HISTORY trail — as SVG for the web UI and
// as plain text for the terminal client. Only the standard library is
// used; the force layout is a Fruchterman–Reingold variant with a
// collision pass so circle areas (∝ group size) never overlap, the
// paper's anti-clutter requirement.
package viz

import (
	"math"

	"vexus/internal/rng"
)

// Node is one circle to lay out.
type Node struct {
	ID     int
	Radius float64
	X, Y   float64
}

// Edge pulls two nodes together with the given strength ∈ [0, 1]
// (GROUPVIZ uses pairwise group similarity).
type Edge struct {
	A, B     int // node indices
	Strength float64
}

// LayoutConfig tunes the solver.
type LayoutConfig struct {
	Width, Height float64
	Iterations    int
	Seed          uint64
}

// DefaultLayoutConfig fits the 720×480 GROUPVIZ panel.
func DefaultLayoutConfig() LayoutConfig {
	return LayoutConfig{Width: 720, Height: 480, Iterations: 300, Seed: 7}
}

// Layout positions nodes with repulsion between all pairs, attraction
// along edges, a centering pull, and a final collision-relaxation pass;
// positions are clamped so every circle lies inside the canvas. The
// result is deterministic for a fixed seed.
func Layout(nodes []Node, edges []Edge, cfg LayoutConfig) []Node {
	n := len(nodes)
	out := make([]Node, n)
	copy(out, nodes)
	if n == 0 {
		return out
	}
	if cfg.Width <= 0 || cfg.Height <= 0 {
		cfg.Width, cfg.Height = 720, 480
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 300
	}
	r := rng.New(cfg.Seed)

	// Initial placement: jittered ring (deterministic, well-spread).
	cx, cy := cfg.Width/2, cfg.Height/2
	ringR := math.Min(cfg.Width, cfg.Height) / 3
	for i := range out {
		angle := 2*math.Pi*float64(i)/float64(n) + r.Float64()*0.1
		out[i].X = cx + ringR*math.Cos(angle) + r.Float64()*4
		out[i].Y = cy + ringR*math.Sin(angle) + r.Float64()*4
	}
	if n == 1 {
		out[0].X, out[0].Y = cx, cy
		clamp(out, cfg)
		return out
	}

	area := cfg.Width * cfg.Height
	k := math.Sqrt(area / float64(n)) // ideal spacing
	temp := math.Min(cfg.Width, cfg.Height) / 8

	fx := make([]float64, n)
	fy := make([]float64, n)
	for it := 0; it < cfg.Iterations; it++ {
		for i := range fx {
			fx[i], fy[i] = 0, 0
		}
		// Pairwise repulsion, radius-aware.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx := out[i].X - out[j].X
				dy := out[i].Y - out[j].Y
				d2 := dx*dx + dy*dy
				if d2 < 1e-6 {
					dx, dy, d2 = r.Float64()-0.5, r.Float64()-0.5, 0.25
				}
				d := math.Sqrt(d2)
				rep := k * k / d * (1 + (out[i].Radius+out[j].Radius)/k)
				fx[i] += dx / d * rep
				fy[i] += dy / d * rep
				fx[j] -= dx / d * rep
				fy[j] -= dy / d * rep
			}
		}
		// Attraction along edges.
		for _, e := range edges {
			if e.A < 0 || e.A >= n || e.B < 0 || e.B >= n || e.A == e.B {
				continue
			}
			dx := out[e.A].X - out[e.B].X
			dy := out[e.A].Y - out[e.B].Y
			d := math.Hypot(dx, dy)
			if d < 1e-6 {
				continue
			}
			att := d * d / k * e.Strength
			fx[e.A] -= dx / d * att
			fy[e.A] -= dy / d * att
			fx[e.B] += dx / d * att
			fy[e.B] += dy / d * att
		}
		// Centering.
		for i := 0; i < n; i++ {
			fx[i] += (cx - out[i].X) * 0.02
			fy[i] += (cy - out[i].Y) * 0.02
		}
		// Apply with temperature cap, cool down; clamp every step so
		// the simulation cannot run away off-canvas (runaway repulsion
		// otherwise pins every node to a corner at clamp time).
		for i := 0; i < n; i++ {
			d := math.Hypot(fx[i], fy[i])
			if d < 1e-9 {
				continue
			}
			step := math.Min(d, temp)
			out[i].X += fx[i] / d * step
			out[i].Y += fy[i] / d * step
		}
		clamp(out, cfg)
		temp *= 0.97
	}

	resolveCollisions(out, cfg, 80)
	clamp(out, cfg)
	return out
}

// resolveCollisions separates overlapping circles by pushing each pair
// apart along their center line, clamping after every pass so edge
// clamping cannot silently reintroduce overlaps.
func resolveCollisions(nodes []Node, cfg LayoutConfig, passes int) {
	const pad = 4
	clamp(nodes, cfg) // overlaps must be judged in-canvas
	for p := 0; p < passes; p++ {
		moved := false
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				dx := nodes[j].X - nodes[i].X
				dy := nodes[j].Y - nodes[i].Y
				d := math.Hypot(dx, dy)
				min := nodes[i].Radius + nodes[j].Radius + pad
				if d >= min {
					continue
				}
				if d < 1e-6 {
					dx, dy, d = 1, 0, 1
				}
				push := (min - d) / 2
				nx, ny := dx/d, dy/d
				nodes[i].X -= nx * push
				nodes[i].Y -= ny * push
				nodes[j].X += nx * push
				nodes[j].Y += ny * push
				moved = true
			}
		}
		clamp(nodes, cfg)
		if !moved {
			return
		}
	}
}

func clamp(nodes []Node, cfg LayoutConfig) {
	for i := range nodes {
		r := nodes[i].Radius
		nodes[i].X = math.Max(r, math.Min(cfg.Width-r, nodes[i].X))
		nodes[i].Y = math.Max(r, math.Min(cfg.Height-r, nodes[i].Y))
	}
}

// RadiusForSize maps a group size to a circle radius with square-root
// scaling (area ∝ members), bounded to keep labels legible.
func RadiusForSize(size, maxSize int) float64 {
	if size < 1 {
		size = 1
	}
	if maxSize < size {
		maxSize = size
	}
	const minR, maxR = 14.0, 64.0
	f := math.Sqrt(float64(size) / float64(maxSize))
	return minR + (maxR-minR)*f
}
