package index

import (
	"math"
	"testing"
	"testing/quick"

	"vexus/internal/bitset"
	"vexus/internal/groups"
	"vexus/internal/rng"
)

// buildSpace creates a space of n random groups over u users.
func buildSpace(t testing.TB, seed uint64, u, n int) *groups.Space {
	t.Helper()
	r := rng.New(seed)
	v := groups.NewVocab()
	gs := make([]*groups.Group, 0, n)
	for i := 0; i < n; i++ {
		id := v.Intern("t", string(rune('0'+i%10))+string(rune('a'+i/10)))
		members := bitset.New(u)
		size := 1 + r.Intn(u/2)
		for _, m := range r.SampleWithoutReplacement(u, size) {
			members.Add(m)
		}
		gs = append(gs, &groups.Group{Desc: groups.NewDescription(id), Members: members})
	}
	s, err := groups.NewSpace(u, v, gs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildValidation(t *testing.T) {
	s := buildSpace(t, 1, 20, 5)
	if _, err := Build(s, 0); err == nil {
		t.Fatal("frac=0 accepted")
	}
	if _, err := Build(s, 1.5); err == nil {
		t.Fatal("frac>1 accepted")
	}
}

func TestFullMaterializationIsExact(t *testing.T) {
	s := buildSpace(t, 2, 40, 12)
	ix, err := Build(s, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for gid := 0; gid < s.Len(); gid++ {
		got := ix.Neighbors(gid, s.Len())
		want := ix.ExactNeighbors(gid, s.Len())
		if len(got) != len(want) {
			t.Fatalf("gid %d: %d vs %d", gid, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("gid %d entry %d: %+v vs %+v", gid, i, got[i], want[i])
			}
		}
		if r := ix.RecallAtK(gid, 5); r != 1 {
			t.Fatalf("full materialization recall = %v", r)
		}
	}
}

func TestListsSortedDescending(t *testing.T) {
	s := buildSpace(t, 3, 30, 10)
	ix, err := Build(s, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for gid := 0; gid < s.Len(); gid++ {
		list := ix.Neighbors(gid, s.Len())
		for i := 1; i < len(list); i++ {
			if list[i].Sim > list[i-1].Sim {
				t.Fatalf("gid %d not sorted: %v", gid, list)
			}
		}
		for _, nb := range list {
			if nb.ID == gid {
				t.Fatalf("gid %d lists itself", gid)
			}
			if nb.Sim <= 0 || nb.Sim > 1 {
				t.Fatalf("gid %d similarity %v out of range", gid, nb.Sim)
			}
			want := s.Group(gid).Jaccard(s.Group(nb.ID))
			if math.Abs(nb.Sim-want) > 1e-12 {
				t.Fatalf("gid %d sim to %d = %v, want %v", gid, nb.ID, nb.Sim, want)
			}
		}
	}
}

func TestPartialMaterializationFallback(t *testing.T) {
	s := buildSpace(t, 4, 50, 20)
	ix, err := Build(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Build(s, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for gid := 0; gid < s.Len(); gid++ {
		// Ask beyond the prefix: fallback must return the exact answer.
		k := ix.OverlapCount(gid)
		if k == 0 {
			continue
		}
		got := ix.Neighbors(gid, k)
		want := full.Neighbors(gid, k)
		if len(got) != len(want) {
			t.Fatalf("gid %d fallback len %d want %d", gid, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("gid %d fallback entry %d: %+v vs %+v", gid, i, got[i], want[i])
			}
		}
	}
}

func TestPrefixLen(t *testing.T) {
	cases := []struct {
		frac  float64
		total int
		want  int
	}{
		{0.1, 100, 10},
		{0.1, 5, 1},
		{0.1, 0, 0},
		{1, 7, 7},
		{0.15, 10, 2},
		{0.001, 100, 1},
	}
	for _, c := range cases {
		if got := prefixLen(c.frac, c.total); got != c.want {
			t.Errorf("prefixLen(%v, %d) = %d, want %d", c.frac, c.total, got, c.want)
		}
	}
}

func TestNeighborsKZero(t *testing.T) {
	s := buildSpace(t, 5, 20, 6)
	ix, err := Build(s, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Neighbors(0, 0); got != nil {
		t.Fatalf("k=0 -> %v", got)
	}
	if got := ix.Neighbors(0, -3); got != nil {
		t.Fatalf("k<0 -> %v", got)
	}
}

func TestMemoryScalesWithFraction(t *testing.T) {
	s := buildSpace(t, 6, 80, 40)
	small, err := Build(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(s, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if small.MemoryBytes() >= big.MemoryBytes() {
		t.Fatalf("memory %d (10%%) >= %d (100%%)", small.MemoryBytes(), big.MemoryBytes())
	}
}

func TestPropRecallMonotoneInFraction(t *testing.T) {
	// Design decision 2 (DESIGN.md): recall@k must be non-decreasing in
	// the materialization fraction.
	f := func(seed int64) bool {
		s := buildSpace(t, uint64(seed)+100, 40, 15)
		fracs := []float64{0.05, 0.25, 1.0}
		prev := -1.0
		for _, frac := range fracs {
			ix, err := Build(s, frac)
			if err != nil {
				return false
			}
			r := ix.MeanRecallAtK(5)
			if r < prev-1e-12 {
				return false
			}
			prev = r
		}
		return prev == 1.0 // full materialization has perfect recall
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRecallOnEmptyOverlap(t *testing.T) {
	// Disjoint groups: everyone's list is empty, recall trivially 1.
	v := groups.NewVocab()
	a := v.Intern("t", "a")
	b := v.Intern("t", "b")
	gs := []*groups.Group{
		{Desc: groups.NewDescription(a), Members: bitset.FromIndices(10, []int{0, 1})},
		{Desc: groups.NewDescription(b), Members: bitset.FromIndices(10, []int{5, 6})},
	}
	s, err := groups.NewSpace(10, v, gs)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.MeanRecallAtK(3); got != 1 {
		t.Fatalf("recall = %v", got)
	}
	if got := ix.Neighbors(0, 5); len(got) != 0 {
		t.Fatalf("neighbors of isolated group: %v", got)
	}
}

func TestRng(t *testing.T) {
	// Guard: buildSpace must produce deterministic spaces per seed.
	a := buildSpace(t, 42, 30, 8)
	b := buildSpace(t, 42, 30, 8)
	for i := 0; i < a.Len(); i++ {
		if !a.Group(i).Members.Equal(b.Group(i).Members) {
			t.Fatal("buildSpace not deterministic")
		}
	}
	_ = rng.New(1)
}

func TestDisableFallback(t *testing.T) {
	s := buildSpace(t, 7, 50, 20)
	ix, err := Build(s, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	gid := 0
	prefix := ix.MaterializedLen(gid)
	if prefix >= ix.OverlapCount(gid) {
		t.Skip("prefix covers the full list on this seed")
	}
	// With fallback: more than the prefix.
	withFB := ix.Neighbors(gid, ix.OverlapCount(gid))
	if len(withFB) <= prefix {
		t.Fatalf("fallback returned %d ≤ prefix %d", len(withFB), prefix)
	}
	// Without: exactly the prefix.
	ix.DisableFallback = true
	without := ix.Neighbors(gid, ix.OverlapCount(gid))
	if len(without) != prefix {
		t.Fatalf("prefix-only returned %d, want %d", len(without), prefix)
	}
}

func TestSelectTopKMatchesSort(t *testing.T) {
	r := rng.New(33)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		ns := make([]Neighbor, n)
		for i := range ns {
			ns[i] = Neighbor{ID: i, Sim: float64(r.Intn(20)) / 20}
		}
		k := r.Intn(n + 1)
		want := append([]Neighbor(nil), ns...)
		sortNeighbors(want)
		selectTopK(ns, k)
		top := append([]Neighbor(nil), ns[:k]...)
		sortNeighbors(top)
		for i := 0; i < k; i++ {
			if top[i] != want[i] {
				t.Fatalf("trial %d: top-%d mismatch at %d: %+v vs %+v",
					trial, k, i, top[i], want[i])
			}
		}
	}
}
