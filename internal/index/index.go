// Package index implements the per-group inverted similarity index of
// §II-A: for each group g, a list of all other groups in decreasing
// order of Jaccard similarity to g. To reduce time and space, only the
// top fraction of each list is materialized (the paper materializes
// 10% and reports it adequate, citing [14]); lookups beyond the
// materialized prefix fall back to an exact on-the-fly computation, so
// correctness never depends on the fraction — only latency does.
//
// Construction exploits the group overlap graph: Jaccard(g, h) > 0
// requires a shared member, so candidates for g's list are exactly the
// groups reachable through g's members (space.Neighbors), not all
// |G|−1 groups. Disjoint groups tie at similarity 0 and are never
// materialized.
package index

import (
	"fmt"
	"sort"

	"vexus/internal/groups"
	"vexus/internal/parallel"
)

// Neighbor is one entry of a group's inverted list.
type Neighbor struct {
	ID  int
	Sim float64
}

// Index holds the (partially) materialized inverted lists.
type Index struct {
	space *groups.Space
	frac  float64
	// lists[g] is the materialized prefix of g's inverted list,
	// descending similarity, ties broken by ascending id.
	lists [][]Neighbor
	// overlapCount[g] is the number of groups with non-zero
	// similarity to g (length of the full meaningful list).
	overlapCount []int
	// sizes caches each group's member count: with intersection sizes
	// accumulated by counting (see computeListInto), Jaccard reduces
	// to |A∩B| / (|A|+|B|−|A∩B|) with no bitset work at all.
	sizes []int
	// DisableFallback makes Neighbors return at most the materialized
	// prefix instead of recomputing exactly — the configuration that
	// exposes what partial materialization costs downstream (E2).
	DisableFallback bool
}

// Build materializes the top frac ∈ (0,1] of each group's inverted
// list with one worker per CPU. frac is measured against |G|−1 (the
// paper's definition), but zero-similarity entries are never stored:
// the materialized prefix of g is min(ceil(frac·(|G|−1)), #overlapping
// groups) entries long.
func Build(space *groups.Space, frac float64) (*Index, error) {
	return BuildParallel(space, frac, 0)
}

// BuildParallel is Build with an explicit worker count (<= 0 means
// runtime.NumCPU()). Each group's inverted list depends only on the
// immutable space, so groups shard across workers — every worker
// carries its own cnt/touched scratch and writes only its groups'
// slots in lists/overlapCount, making the result bit-identical to the
// 1-worker build (TestParallelBuildEquivalence holds this invariant).
func BuildParallel(space *groups.Space, frac float64, workers int) (*Index, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("index: fraction must be in (0,1], got %v", frac)
	}
	n := space.Len()
	ix := &Index{
		space:        space,
		frac:         frac,
		lists:        make([][]Neighbor, n),
		overlapCount: make([]int, n),
		sizes:        make([]int, n),
	}
	for gid := 0; gid < n; gid++ {
		ix.sizes[gid] = space.Group(gid).Size()
	}
	// One scratch counter array reused per worker keeps Build
	// allocation-free in the inner loop. Only the kept prefix is ever
	// sorted: quickselect pushes the top `keep` entries to the front,
	// then a partial sort orders just those — the full list would cost
	// ~10× more comparisons at the paper's 10% fraction.
	resolved := parallel.Workers(workers, n)
	type scratch struct {
		cnt     []int32
		touched []int32
	}
	scratches := make([]scratch, resolved)
	for w := range scratches {
		scratches[w] = scratch{cnt: make([]int32, n), touched: make([]int32, 0, 1024)}
	}
	parallel.Range(n, resolved, func(worker, lo, hi int) {
		sc := &scratches[worker]
		for gid := lo; gid < hi; gid++ {
			full := ix.accumulate(gid, sc.cnt, &sc.touched)
			ix.overlapCount[gid] = len(full)
			keep := prefixLen(frac, n-1)
			if keep > len(full) {
				keep = len(full)
			}
			selectTopK(full, keep)
			prefix := full[:keep]
			sortNeighbors(prefix)
			ix.lists[gid] = append([]Neighbor(nil), prefix...)
		}
	})
	return ix, nil
}

// Restore reassembles an Index from its serialized parts — the
// materialized lists and overlap counts a snapshot carried — without
// recomputing any similarity. The sizes cache is re-derived from the
// space; lists are adopted as-is (the caller must not modify them
// afterwards), so a restored index is bit-identical to the one that
// was saved.
func Restore(space *groups.Space, frac float64, lists [][]Neighbor, overlapCount []int) (*Index, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("index: fraction must be in (0,1], got %v", frac)
	}
	n := space.Len()
	if len(lists) != n || len(overlapCount) != n {
		return nil, fmt.Errorf("index: restoring %d lists / %d counts over %d groups", len(lists), len(overlapCount), n)
	}
	ix := &Index{
		space:        space,
		frac:         frac,
		lists:        lists,
		overlapCount: overlapCount,
		sizes:        make([]int, n),
	}
	for gid := 0; gid < n; gid++ {
		if len(lists[gid]) > overlapCount[gid] {
			return nil, fmt.Errorf("index: group %d materializes %d entries but overlaps only %d groups", gid, len(lists[gid]), overlapCount[gid])
		}
		ix.sizes[gid] = space.Group(gid).Size()
	}
	return ix, nil
}

// selectTopK partitions ns so that the k best entries (by descending
// similarity, ascending id) occupy ns[:k], in arbitrary order
// (iterative quickselect with median-of-three pivots).
func selectTopK(ns []Neighbor, k int) {
	lo, hi := 0, len(ns)
	if k <= 0 || k >= len(ns) {
		return
	}
	for hi-lo > 1 {
		p := partition(ns, lo, hi)
		switch {
		case p == k:
			return
		case p < k:
			lo = p + 1
		default:
			hi = p
		}
		if lo >= k {
			return
		}
	}
}

// partition orders ns[lo:hi] around a pivot with "better" entries
// first, returning the pivot's final position.
func partition(ns []Neighbor, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if better(ns[mid], ns[lo]) {
		ns[lo], ns[mid] = ns[mid], ns[lo]
	}
	if better(ns[hi-1], ns[lo]) {
		ns[lo], ns[hi-1] = ns[hi-1], ns[lo]
	}
	if better(ns[hi-1], ns[mid]) {
		ns[mid], ns[hi-1] = ns[hi-1], ns[mid]
	}
	pivot := ns[mid]
	ns[mid], ns[hi-1] = ns[hi-1], ns[mid]
	store := lo
	for i := lo; i < hi-1; i++ {
		if better(ns[i], pivot) {
			ns[i], ns[store] = ns[store], ns[i]
			store++
		}
	}
	ns[store], ns[hi-1] = ns[hi-1], ns[store]
	return store
}

// better is the materialization order: higher similarity first, ties
// by ascending id.
func better(a, b Neighbor) bool {
	if a.Sim != b.Sim {
		return a.Sim > b.Sim
	}
	return a.ID < b.ID
}

// prefixLen returns ceil(frac · total), at least 1 when total > 0.
func prefixLen(frac float64, total int) int {
	if total <= 0 {
		return 0
	}
	k := int(frac * float64(total))
	if float64(k) < frac*float64(total) {
		k++
	}
	if k < 1 {
		k = 1
	}
	return k
}

// computeList returns the full non-zero inverted list of gid, sorted.
func (ix *Index) computeList(gid int) []Neighbor {
	cnt := make([]int32, ix.space.Len())
	touched := make([]int32, 0, 1024)
	out := ix.accumulate(gid, cnt, &touched)
	sortNeighbors(out)
	return out
}

// accumulate computes the unsorted non-zero inverted list of gid by
// walking the user→groups lists once: after the scan, cnt[h] = |g ∩ h|
// for every overlapping group h, so each similarity is a division
// rather than a bitset pass. cnt must be all-zero on entry and is
// re-zeroed before returning (only touched entries are reset).
func (ix *Index) accumulate(gid int, cnt []int32, touched *[]int32) []Neighbor {
	g := ix.space.Group(gid)
	tt := (*touched)[:0]
	g.Members.Range(func(u int) bool {
		for _, hid := range ix.space.GroupsOfUser(u) {
			if cnt[hid] == 0 {
				tt = append(tt, hid)
			}
			cnt[hid]++
		}
		return true
	})
	out := make([]Neighbor, 0, len(tt))
	sizeG := ix.sizes[gid]
	for _, hid := range tt {
		inter := int(cnt[hid])
		cnt[hid] = 0
		if int(hid) == gid {
			continue
		}
		union := sizeG + ix.sizes[hid] - inter
		if union > 0 && inter > 0 {
			out = append(out, Neighbor{ID: int(hid), Sim: float64(inter) / float64(union)})
		}
	}
	*touched = tt
	return out
}

func sortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Sim != ns[j].Sim {
			return ns[i].Sim > ns[j].Sim
		}
		return ns[i].ID < ns[j].ID
	})
}

// Fraction returns the materialization fraction the index was built
// with.
func (ix *Index) Fraction() float64 { return ix.frac }

// Space returns the group space the index is built over.
func (ix *Index) Space() *groups.Space { return ix.space }

// MaterializedLen returns the materialized prefix length for gid.
func (ix *Index) MaterializedLen(gid int) int { return len(ix.lists[gid]) }

// MaterializedList returns exactly the materialized prefix of gid's
// inverted list, never falling back to recomputation — the
// serialization view of the index. The returned slice must not be
// modified.
func (ix *Index) MaterializedList(gid int) []Neighbor { return ix.lists[gid] }

// OverlapCount returns the number of groups with non-zero similarity
// to gid.
func (ix *Index) OverlapCount(gid int) int { return ix.overlapCount[gid] }

// Neighbors returns the top-k most similar groups to gid. When k
// exceeds the materialized prefix, the exact list is recomputed on the
// fly (the fallback that keeps partial materialization safe), unless
// DisableFallback is set, in which case the prefix is all there is.
func (ix *Index) Neighbors(gid, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	list := ix.lists[gid]
	if k <= len(list) {
		return list[:k:k]
	}
	if ix.DisableFallback || len(list) >= ix.overlapCount[gid] {
		// Prefix-only mode, or the prefix already holds every
		// non-zero entry.
		return list
	}
	full := ix.computeList(gid)
	if k > len(full) {
		k = len(full)
	}
	return full[:k]
}

// ExactNeighbors always recomputes the full list and returns its top-k,
// the ground truth for recall measurements (E2).
func (ix *Index) ExactNeighbors(gid, k int) []Neighbor {
	full := ix.computeList(gid)
	if k > len(full) {
		k = len(full)
	}
	if k < 0 {
		k = 0
	}
	return full[:k]
}

// RecallAtK returns the fraction of the exact top-k of gid that the
// materialized prefix (alone, without fallback) contains. Groups whose
// exact list is shorter than k are measured against the shorter list.
func (ix *Index) RecallAtK(gid, k int) float64 {
	exact := ix.ExactNeighbors(gid, k)
	if len(exact) == 0 {
		return 1
	}
	mat := ix.lists[gid]
	inMat := make(map[int]bool, len(mat))
	for _, nb := range mat {
		inMat[nb.ID] = true
	}
	hit := 0
	for _, nb := range exact {
		if inMat[nb.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}

// MeanRecallAtK averages RecallAtK over every group — the E2 metric.
func (ix *Index) MeanRecallAtK(k int) float64 {
	if ix.space.Len() == 0 {
		return 1
	}
	sum := 0.0
	for gid := 0; gid < ix.space.Len(); gid++ {
		sum += ix.RecallAtK(gid, k)
	}
	return sum / float64(ix.space.Len())
}

// MemoryBytes estimates the materialized footprint: one (int, float64)
// pair per stored neighbor plus slice headers.
func (ix *Index) MemoryBytes() int {
	const entryBytes = 16 // int64 id + float64 sim
	const headerBytes = 24
	total := 0
	for _, l := range ix.lists {
		total += headerBytes + entryBytes*len(l)
	}
	return total
}
