package index

import (
	"fmt"
	"testing"
)

// TestParallelBuildEquivalence: the multi-worker build must produce
// byte-identical inverted lists (entries, order, lengths, overlap
// counts) to the 1-worker build, across materialization fractions and
// seeded synthetic spaces of different shapes.
func TestParallelBuildEquivalence(t *testing.T) {
	spaces := []struct {
		name  string
		seed  uint64
		users int
		n     int
	}{
		{"small-dense", 11, 40, 25},
		{"mid", 12, 200, 120},
		{"many-groups", 13, 150, 300},
	}
	for _, sp := range spaces {
		s := buildSpace(t, sp.seed, sp.users, sp.n)
		for _, frac := range []float64{0.1, 0.5, 1.0} {
			for _, workers := range []int{2, 4, 7} {
				t.Run(fmt.Sprintf("%s/frac=%.1f/w=%d", sp.name, frac, workers), func(t *testing.T) {
					seq, err := BuildParallel(s, frac, 1)
					if err != nil {
						t.Fatal(err)
					}
					par, err := BuildParallel(s, frac, workers)
					if err != nil {
						t.Fatal(err)
					}
					for gid := 0; gid < s.Len(); gid++ {
						if seq.overlapCount[gid] != par.overlapCount[gid] {
							t.Fatalf("gid %d: overlapCount %d != %d",
								gid, par.overlapCount[gid], seq.overlapCount[gid])
						}
						a, b := seq.lists[gid], par.lists[gid]
						if len(a) != len(b) {
							t.Fatalf("gid %d: list length %d != %d", gid, len(b), len(a))
						}
						for i := range a {
							if a[i] != b[i] {
								t.Fatalf("gid %d entry %d: parallel %+v != sequential %+v",
									gid, i, b[i], a[i])
							}
						}
					}
				})
			}
		}
	}
}

// TestBuildDefaultsToParallel: the plain Build entry point (auto
// workers) matches the explicit 1-worker build too.
func TestBuildDefaultsToParallel(t *testing.T) {
	s := buildSpace(t, 21, 120, 80)
	auto, err := Build(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := BuildParallel(s, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for gid := 0; gid < s.Len(); gid++ {
		a, b := seq.lists[gid], auto.lists[gid]
		if len(a) != len(b) {
			t.Fatalf("gid %d: list length %d != %d", gid, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("gid %d entry %d: %+v != %+v", gid, i, b[i], a[i])
			}
		}
	}
}
