module vexus

go 1.22
