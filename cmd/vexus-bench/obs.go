package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"time"

	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/greedy"
	"vexus/internal/serve"
	"vexus/internal/telemetry"
)

// ---------------------------------------------------------------------------
// P6 — telemetry overhead: the full observability stack (HTTP
// middleware with trace propagation, per-route counters and latency
// histograms, the action-apply timing hook) against the identical
// server with telemetry.Disabled, which makes every instrument a
// nil no-op and leaves Routes() unwrapped. Both variants serve the
// same engine and run the same request script through ServeHTTP
// directly — no sockets — in interleaved A/B rounds so clock drift
// and thermal state cancel. The paper-facing claim: observability is
// always-on because it costs under 2% of the hot serving path.

// p6Round drives one scripted round against a server: one mutation
// batch (explore a shown group, backtrack to the initial display, so
// session state never grows) plus four state reads.
func p6Round(h http.Handler, sid string) error {
	body := `[{"op":"explore","group":0},{"op":"backtrack","step":0}]`
	req := httptest.NewRequest(http.MethodPost, "/api/v1/sessions/"+sid+"/actions", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return fmt.Errorf("p6: actions: status %d: %s", rec.Code, rec.Body.String())
	}
	for i := 0; i < 4; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/sessions/"+sid+"/state", nil))
		if rec.Code != http.StatusOK {
			return fmt.Errorf("p6: state: status %d", rec.Code)
		}
	}
	return nil
}

func runP6(seed uint64, _ string) error {
	header("P6: telemetry overhead",
		"full instrumentation (middleware + counters + histograms + apply timing) costs <2% on the hot serving path")

	d, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 1000, Seed: seed})
	if err != nil {
		return err
	}
	cfg := core.DefaultPipelineConfig()
	cfg.Encode = datagen.DBAuthorsEncodeOptions()
	cfg.MinSupportFrac = 0.02
	cfg.Workers = workersFlag
	eng, err := core.Build(d, cfg)
	if err != nil {
		return err
	}
	gcfg := greedy.DefaultConfig()
	gcfg.TimeLimit = 0

	// Both variants log above Debug into the void: span logging is off,
	// so the disabled variant's Routes() registers raw handlers — the
	// true zero-instrumentation baseline.
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	newServer := func(reg *telemetry.Registry) (http.Handler, string, error) {
		scfg := serve.DefaultConfig()
		scfg.Telemetry = reg
		scfg.Logger = quiet
		h := serve.New(eng, gcfg, scfg).Routes()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/sessions", nil))
		if rec.Code != http.StatusCreated {
			return nil, "", fmt.Errorf("p6: create: status %d: %s", rec.Code, rec.Body.String())
		}
		loc := rec.Result().Header.Get("Location")
		return h, loc[strings.LastIndexByte(loc, '/')+1:], nil
	}

	instrumented, sidA, err := newServer(nil) // nil = fresh registry: metrics fully on
	if err != nil {
		return err
	}
	disabled, sidB, err := newServer(telemetry.Disabled)
	if err != nil {
		return err
	}

	const warmup, rounds = 30, 500
	for i := 0; i < warmup; i++ {
		if err := p6Round(instrumented, sidA); err != nil {
			return err
		}
		if err := p6Round(disabled, sidB); err != nil {
			return err
		}
	}
	var instrTime, disTime time.Duration
	for i := 0; i < rounds; i++ {
		// Alternate which variant goes first each round so any slow
		// drift (GC phase, CPU frequency) debits both sides equally.
		first, second := instrumented, disabled
		sidF, sidS := sidA, sidB
		tF, tS := &instrTime, &disTime
		if i%2 == 1 {
			first, second, sidF, sidS, tF, tS = disabled, instrumented, sidB, sidA, &disTime, &instrTime
		}
		t0 := time.Now()
		if err := p6Round(first, sidF); err != nil {
			return err
		}
		*tF += time.Since(t0)
		t0 = time.Now()
		if err := p6Round(second, sidS); err != nil {
			return err
		}
		*tS += time.Since(t0)
	}

	instrMS := float64(instrTime.Microseconds()) / 1000
	disMS := float64(disTime.Microseconds()) / 1000
	overheadPct := (instrMS - disMS) / disMS * 100
	reqs := rounds * 5

	fmt.Printf("%-24s %12s\n", "variant", "total ms")
	fmt.Printf("%-24s %12.1f\n", "instrumented", instrMS)
	fmt.Printf("%-24s %12.1f\n", "telemetry.Disabled", disMS)
	fmt.Printf("\n%d rounds (%d requests each side): overhead %+.2f%% (budget 2%%)\n",
		rounds, reqs, overheadPct)

	note := struct {
		Experiment     string  `json:"experiment"`
		NumCPU         int     `json:"num_cpu"`
		Seed           uint64  `json:"seed"`
		Rounds         int     `json:"rounds"`
		Requests       int     `json:"requests_per_variant"`
		InstrumentedMS float64 `json:"instrumented_ms"`
		DisabledMS     float64 `json:"disabled_ms"`
		OverheadPct    float64 `json:"overhead_pct"`
		BudgetPct      float64 `json:"budget_pct"`
	}{
		Experiment:     "obs_overhead",
		NumCPU:         runtime.NumCPU(),
		Seed:           seed,
		Rounds:         rounds,
		Requests:       reqs,
		InstrumentedMS: instrMS,
		DisabledMS:     disMS,
		OverheadPct:    overheadPct,
		BudgetPct:      2,
	}
	enc, err := json.MarshalIndent(note, "", "  ")
	if err != nil {
		return err
	}
	if benchNote != "" {
		if err := os.WriteFile(benchNote, append(enc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("bench note written to %s\n", benchNote)
	} else {
		fmt.Printf("%s\n", enc)
	}
	return nil
}
