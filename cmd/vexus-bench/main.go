// vexus-bench regenerates every quantitative claim of the paper
// (DESIGN.md §5): run `vexus-bench -e all` for the full suite or
// `-e e1,e4` for a subset. Each experiment prints a table whose shape
// should match the paper's claim; EXPERIMENTS.md records a captured
// run side by side with the claims.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	var (
		exps  = flag.String("e", "all", "comma-separated experiments (e1..e9,p1..p7,f1) or 'all'")
		seed  = flag.Uint64("seed", 42, "master seed for synthetic data and simulations")
		scale = flag.String("scale", "small", "e9/p7 scale: small | paper")
	)
	flag.IntVar(&workersFlag, "workers", 0,
		"worker count for the parallel mining/simulation paths (0 = NumCPU, 1 = sequential)")
	flag.StringVar(&benchNote, "bench-note", "",
		"write the p1..p7 wall-time note to this JSON file (e.g. BENCH_parallel_mining.json, BENCH_store_warmstart.json, BENCH_cluster_routing.json, BENCH_sse_fanout.json, BENCH_ingest.json, BENCH_obs_overhead.json, BENCH_cluster_scale.json); run one experiment per invocation when using it")
	flag.IntVar(&p7Users, "users", 0, "p7: population size (0 = scale preset)")
	flag.IntVar(&p7Live, "live", 0, "p7: live analysts driving real sessions (0 = scale preset)")
	flag.IntVar(&p7Shards, "lshards", 0, "p7: cluster size (0 = scale preset)")
	flag.IntVar(&p7Ticks, "ticks", 0, "p7: virtual run length in ticks (0 = scale preset)")
	flag.StringVar(&p7Chaos, "chaos", "", `p7: fault schedule "tick:op[:target],..." ("" = default schedule, "none" = fault-free)`)
	flag.StringVar(&baselineFlag, "baseline", "",
		"compare this run's regression metrics against a prior bench-note JSON; exit non-zero past -regress-threshold (p7)")
	flag.Float64Var(&regressPctFlag, "regress-threshold", 10,
		"percent a regression metric may exceed its -baseline value before the gate fails")
	flag.Parse()

	runners := map[string]func(uint64, string) error{
		"e1": runE1, "e2": runE2, "e3": runE3, "e4": runE4, "e5": runE5,
		"e6": runE6, "e7": runE7, "e8": runE8, "e9": runE9, "p1": runP1,
		"p2": runP2, "p3": runP3, "p4": runP4, "p5": runP5, "p6": runP6,
		"p7": runP7, "f1": runF1,
	}
	order := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "f1"}

	var selected []string
	if *exps == "all" {
		selected = order
	} else {
		for _, e := range strings.Split(*exps, ",") {
			e = strings.TrimSpace(strings.ToLower(e))
			if _, ok := runners[e]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (have %v)\n", e, order)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	for _, e := range selected {
		if err := runners[e](*seed, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func header(id, claim string) {
	fmt.Printf("=== %s ===\n", id)
	fmt.Printf("paper claim: %s\n\n", claim)
}
