package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"

	"vexus/internal/loadsim"
)

// p7 knobs (registered in main). Zero values defer to the -scale
// presets; -chaos "" keeps the preset's default schedule.
var (
	p7Users  int
	p7Live   int
	p7Shards int
	p7Ticks  int
	p7Chaos  string

	baselineFlag    string
	regressPctFlag  float64
	regressExitCode = 3
)

// runP7 is the cluster-scale load/chaos experiment: a Zipf population
// of simulated analysts driving a multi-shard in-process cluster
// through the real v1 API and SSE streams while the default fault
// schedule (kill, gateway restart, partition/heal, drain, engine
// eviction) runs, with every fail-closed invariant asserted. The
// regression sub-object of the JSON note is what -baseline gates on.
func runP7(seed uint64, scale string) error {
	header("p7", "cluster sustains interactive latency and fails closed under churn (DESIGN.md §5)")

	cfg := loadsim.Config{
		Users:  2_000,
		Live:   48,
		Shards: 3,
		Ticks:  60,
		Seed:   seed,
		Chaos:  "default",
	}
	if scale == "paper" {
		cfg.Users = 10_000
		cfg.Ticks = 120
		cfg.Live = 64
	}
	if p7Users > 0 {
		cfg.Users = p7Users
	}
	if p7Live > 0 {
		cfg.Live = p7Live
	}
	if p7Shards > 0 {
		cfg.Shards = p7Shards
	}
	if p7Ticks > 0 {
		cfg.Ticks = p7Ticks
	}
	switch p7Chaos {
	case "":
	case "none":
		cfg.Chaos = ""
	default:
		cfg.Chaos = p7Chaos
	}
	cfg.Workers = workersFlag

	s, err := loadsim.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("%-26s %12s\n", "metric", "value")
	fmt.Printf("%-26s %12d\n", "analysts", s.Users)
	fmt.Printf("%-26s %12d\n", "virtual actions", s.VirtualActions)
	fmt.Printf("%-26s %12d\n", "live creates", s.LiveCreates)
	fmt.Printf("%-26s %12.2f\n", "p50 latency ms", s.LatencyP50Ms)
	fmt.Printf("%-26s %12.2f\n", "p99 latency ms", s.LatencyP99Ms)
	fmt.Printf("%-26s %12.2f\n", "p99.9 latency ms", s.LatencyP999Ms)
	fmt.Printf("%-26s %12.2f\n", "mean queue depth", s.QueueMeanDepth)
	fmt.Printf("%-26s %12.2f\n", "max queue depth", s.QueueMaxDepth)
	fmt.Printf("%-26s %12d\n", "sessions lost", s.SessionsLost)
	fmt.Printf("%-26s %12d\n", "drain moved", s.DrainMoved)
	fmt.Printf("%-26s %12d\n", "engine evictions", s.EngineEvictions)
	fmt.Printf("%-26s %12d\n", "sse events delivered", s.SSEDelivered)
	fmt.Println()
	for _, ev := range s.ChaosApplied {
		fmt.Printf("chaos: %s\n", ev)
	}

	violations := s.MisroutedSessions + s.EtagBreaks + s.EpochViolations +
		s.ChaosErrors + s.AuditFailures + s.FailOpenSessions
	if !s.RestartPreserved {
		violations++
	}
	if violations != 0 {
		return fmt.Errorf("p7: %d fail-closed violations (misrouted=%d etag=%d epoch=%d chaos=%d audit=%d failopen=%d restartOK=%v)",
			violations, s.MisroutedSessions, s.EtagBreaks, s.EpochViolations,
			s.ChaosErrors, s.AuditFailures, s.FailOpenSessions, s.RestartPreserved)
	}
	fmt.Printf("\nfail-closed invariants: all clean (misrouted 0, etag breaks 0, epoch violations 0, ghosts 0)\n")

	regression := map[string]float64{
		"p50_ms":           s.LatencyP50Ms,
		"p99_ms":           s.LatencyP99Ms,
		"p999_ms":          s.LatencyP999Ms,
		"queue_mean_depth": s.QueueMeanDepth,
	}
	note := struct {
		Experiment string             `json:"experiment"`
		NumCPU     int                `json:"num_cpu"`
		Seed       uint64             `json:"seed"`
		Summary    *loadsim.Summary   `json:"summary"`
		Regression map[string]float64 `json:"regression"`
	}{
		Experiment: "cluster_scale",
		NumCPU:     runtime.NumCPU(),
		Seed:       seed,
		Summary:    s,
		Regression: regression,
	}
	enc, err := json.MarshalIndent(note, "", "  ")
	if err != nil {
		return err
	}
	if benchNote != "" {
		if err := os.WriteFile(benchNote, append(enc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("bench note written to %s\n", benchNote)
	} else {
		fmt.Printf("%s\n", enc)
	}

	if baselineFlag != "" {
		if err := checkBaseline(regression); err != nil {
			fmt.Fprintf(os.Stderr, "regression gate: %v\n", err)
			os.Exit(regressExitCode)
		}
		fmt.Printf("regression gate: within %.1f%% of %s\n", regressPctFlag, baselineFlag)
	}
	return nil
}

// checkBaseline compares the current run's regression metrics against
// the "regression" object of a previously written bench note. Any
// metric more than -regress-threshold percent worse than its baseline
// fails the gate; metrics absent from the baseline are skipped (so new
// metrics can be introduced without invalidating old baselines).
func checkBaseline(current map[string]float64) error {
	raw, err := os.ReadFile(baselineFlag)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var note struct {
		Regression map[string]float64 `json:"regression"`
	}
	if err := json.Unmarshal(raw, &note); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselineFlag, err)
	}
	if len(note.Regression) == 0 {
		return fmt.Errorf("baseline %s has no regression object", baselineFlag)
	}
	keys := make([]string, 0, len(current))
	for k := range current {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var failures []string
	for _, k := range keys {
		base, ok := note.Regression[k]
		if !ok {
			continue
		}
		cur := current[k]
		limit := base * (1 + regressPctFlag/100)
		if base == 0 {
			// A zero baseline (e.g. empty queue) tolerates absolute noise
			// up to the threshold expressed in the metric's own unit.
			limit = regressPctFlag / 100
		}
		if cur > limit {
			failures = append(failures, fmt.Sprintf("%s: %.4f > %.4f (baseline %.4f +%.1f%%)", k, cur, limit, base, regressPctFlag))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d metric(s) regressed past threshold:\n  %s", len(failures), joinLines(failures))
	}
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
