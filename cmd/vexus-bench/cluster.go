package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"vexus/internal/action"
	"vexus/internal/cluster"
	"vexus/internal/greedy"
	"vexus/internal/serve"
)

// greedyDet is the deterministic optimizer config — the cluster
// migration-fidelity precondition, and what shard mode runs.
func greedyDet() greedy.Config {
	cfg := greedy.DefaultConfig()
	cfg.TimeLimit = 0
	return cfg
}

// ---------------------------------------------------------------------------
// P3 — cluster routing overhead + migration latency (the
// internal/cluster subsystem): the same action traffic against a shard
// directly and through a gateway in front of it (both over loopback
// TCP, so the delta is the proxy hop), then a drain that migrates a
// population of sessions by trail replay. States are byte-identical
// across the gateway and across migration by the cluster contract
// (pinned by internal/cluster's equivalence tests); p3 measures what
// that indirection costs.

func runP3(seed uint64, _ string) error {
	header("P3: sharded session serving",
		"gateway adds one proxy hop to each request; migration replays a session in milliseconds")

	eng, err := buildAuthors(seed, 1000, 0.02)
	if err != nil {
		return err
	}
	scfg := serve.DefaultConfig()
	scfg.ShardAPI = true
	gcfg := greedyDet()

	mkShard := func() *serve.Server { return serve.New(eng, gcfg, scfg) }
	s0, s1 := mkShard(), mkShard()
	defer s0.Close()
	defer s1.Close()

	direct := httptest.NewServer(s0.Routes())
	defer direct.Close()
	gw, err := cluster.NewGateway(
		cluster.LocalShard("s0", s0.Routes()),
		cluster.LocalShard("s1", s1.Routes()),
	)
	if err != nil {
		return err
	}
	defer gw.Close()
	gwSrv := httptest.NewServer(gw.Routes())
	defer gwSrv.Close()

	// Routing overhead: identical one-action batches, direct vs
	// proxied. Both paths cross loopback TCP once; the gateway path
	// additionally routes by sid and dispatches the shard handler.
	const requests = 300
	directMS, err := driveSession(direct.URL, requests)
	if err != nil {
		return fmt.Errorf("direct drive: %w", err)
	}
	gatewayMS, err := driveSession(gwSrv.URL, requests)
	if err != nil {
		return fmt.Errorf("gateway drive: %w", err)
	}

	// Migration latency: a population of sessions with real trails,
	// drained off their shard in one sweep.
	const population = 40
	const trailLen = 5
	for i := 0; i < population; i++ {
		if err := seedSession(gwSrv.URL, trailLen); err != nil {
			return fmt.Errorf("seeding session %d: %w", i, err)
		}
	}
	victim := gw.Shards()[0]
	t0 := time.Now()
	moved, err := gw.Drain(victim)
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	drainTime := time.Since(t0)
	perSession := 0.0
	if moved > 0 {
		perSession = float64(drainTime.Microseconds()) / 1000 / float64(moved)
	}

	fmt.Printf("%-22s %10s %12s\n", "stage", "requests", "per-req ms")
	fmt.Printf("%-22s %10d %12.3f\n", "shard direct", requests, directMS/requests)
	fmt.Printf("%-22s %10d %12.3f\n", "through gateway", requests, gatewayMS/requests)
	fmt.Printf("\ngateway overhead %.3f ms/request (%.2fx); drained %d sessions (trail %d) in %.1f ms — %.2f ms/session\n",
		(gatewayMS-directMS)/requests, gatewayMS/directMS, moved, trailLen+1,
		float64(drainTime.Microseconds())/1000, perSession)

	note := struct {
		Experiment    string  `json:"experiment"`
		NumCPU        int     `json:"num_cpu"`
		Seed          uint64  `json:"seed"`
		Requests      int     `json:"requests"`
		DirectMS      float64 `json:"direct_ms"`
		GatewayMS     float64 `json:"gateway_ms"`
		OverheadPerMS float64 `json:"overhead_per_request_ms"`
		Moved         int     `json:"sessions_migrated"`
		TrailLen      int     `json:"trail_len"`
		DrainMS       float64 `json:"drain_ms"`
		PerSessionMS  float64 `json:"migrate_per_session_ms"`
	}{
		Experiment:    "cluster_routing",
		NumCPU:        runtime.NumCPU(),
		Seed:          seed,
		Requests:      requests,
		DirectMS:      directMS,
		GatewayMS:     gatewayMS,
		OverheadPerMS: (gatewayMS - directMS) / requests,
		Moved:         moved,
		TrailLen:      trailLen + 1,
		DrainMS:       float64(drainTime.Microseconds()) / 1000,
		PerSessionMS:  perSession,
	}
	enc, err := json.MarshalIndent(note, "", "  ")
	if err != nil {
		return err
	}
	if benchNote != "" {
		if err := os.WriteFile(benchNote, append(enc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("bench note written to %s\n", benchNote)
	} else {
		fmt.Printf("%s\n", enc)
	}
	return nil
}

// driveSession creates a session at base and applies `requests`
// one-action explore batches, returning total wall milliseconds of
// the apply loop (creation excluded — it is identical on both paths).
func driveSession(base string, requests int) (float64, error) {
	st, err := createSession(base)
	if err != nil {
		return 0, err
	}
	t0 := time.Now()
	cur := st
	for i := 0; i < requests; i++ {
		next, err := applyExplore(base, st.Session, cur.Shown[i%2].ID)
		if err != nil {
			return 0, fmt.Errorf("request %d: %w", i, err)
		}
		cur = next
	}
	return float64(time.Since(t0).Microseconds()) / 1000, nil
}

// seedSession creates a session and walks it trailLen steps so the
// drain has a real trail to replay.
func seedSession(base string, trailLen int) error {
	st, err := createSession(base)
	if err != nil {
		return err
	}
	cur := st
	for i := 0; i < trailLen; i++ {
		next, err := applyExplore(base, st.Session, cur.Shown[i%len(cur.Shown)].ID)
		if err != nil {
			return err
		}
		cur = next
	}
	return nil
}

// benchState is the slice of the server state DTO the driver needs.
type benchState struct {
	Session string `json:"session"`
	Shown   []struct {
		ID int `json:"id"`
	} `json:"shown"`
}

func createSession(base string) (benchState, error) {
	var st benchState
	res, err := http.Post(base+"/api/v1/sessions", "application/json", nil)
	if err != nil {
		return st, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(res.Body)
		return st, fmt.Errorf("create: status %d: %s", res.StatusCode, body)
	}
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		return st, err
	}
	if len(st.Shown) < 2 {
		return st, fmt.Errorf("create: initial display too small (%d groups)", len(st.Shown))
	}
	return st, nil
}

func applyExplore(base, sid string, group int) (benchState, error) {
	var st benchState
	raw, err := json.Marshal([]action.Action{{Op: action.Explore, Group: group}})
	if err != nil {
		return st, err
	}
	res, err := http.Post(base+"/api/v1/sessions/"+sid+"/actions?full=1",
		"application/json", bytes.NewReader(raw))
	if err != nil {
		return st, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(res.Body)
		return st, fmt.Errorf("explore: status %d: %s", res.StatusCode, body)
	}
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		return st, err
	}
	return st, nil
}
