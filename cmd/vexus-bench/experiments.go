package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/greedy"
	"vexus/internal/groups"
	"vexus/internal/index"
	"vexus/internal/mining"
	"vexus/internal/mining/lcm"
	"vexus/internal/parallel"
	"vexus/internal/rng"
	"vexus/internal/simulate"
	"vexus/internal/store"
)

// workersFlag is the -workers count used by every parallel mining or
// simulation path below; benchNote is the -bench-note JSON target of
// the p1 experiment.
var (
	workersFlag int
	benchNote   string
)

// buildAuthors builds the standard DB-AUTHORS evaluation engine.
func buildAuthors(seed uint64, numAuthors int, minSupportFrac float64) (*core.Engine, error) {
	d, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: numAuthors, Seed: seed})
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultPipelineConfig()
	cfg.Encode = datagen.DBAuthorsEncodeOptions()
	cfg.MinSupportFrac = minSupportFrac
	return core.Build(d, cfg)
}

// ---------------------------------------------------------------------------
// E1 — greedy time limit vs. quality (§II-B: 100 ms → ≈90% diversity,
// ≈85% coverage).
func runE1(seed uint64, _ string) error {
	header("E1: greedy time limit vs quality",
		"100 ms budget reaches ≈90% of reference diversity and ≈85% of reference coverage")

	eng, err := buildAuthors(seed, 2000, 0.015)
	if err != nil {
		return err
	}
	opt := greedy.New(eng.Space, eng.Index)

	// Focal groups: a spread of sizes.
	ids := make([]int, eng.Space.Len())
	for i := range ids {
		ids[i] = i
	}
	eng.Space.SortBySize(ids)
	focals := []int{ids[0], ids[len(ids)/8], ids[len(ids)/4], ids[len(ids)/2], ids[3*len(ids)/4]}

	base := greedy.DefaultConfig()
	base.CandidatePool = 2048
	base.FeedbackWeight = 0

	// Reference: a long-budget run per focal group.
	refCov := make(map[int]float64)
	refDiv := make(map[int]float64)
	for _, f := range focals {
		cfg := base
		cfg.TimeLimit = 3 * time.Second
		sel, err := opt.SelectNext(eng.Space.Group(f), nil, cfg)
		if err != nil {
			return err
		}
		refCov[f] = sel.Coverage
		refDiv[f] = sel.Diversity
	}

	fmt.Printf("%-10s %12s %12s %12s\n", "budget", "diversity%", "coverage%", "mean ms")
	for _, budget := range []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
		10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 250 * time.Millisecond, time.Second,
	} {
		var sumDiv, sumCov, sumMS float64
		for _, f := range focals {
			cfg := base
			cfg.TimeLimit = budget
			sel, err := opt.SelectNext(eng.Space.Group(f), nil, cfg)
			if err != nil {
				return err
			}
			if refDiv[f] > 0 {
				sumDiv += sel.Diversity / refDiv[f]
			} else {
				sumDiv++
			}
			if refCov[f] > 0 {
				sumCov += sel.Coverage / refCov[f]
			} else {
				sumCov++
			}
			sumMS += float64(sel.Elapsed.Microseconds()) / 1000
		}
		n := float64(len(focals))
		fmt.Printf("%-10v %11.1f%% %11.1f%% %12.1f\n",
			budget, 100*sumDiv/n, 100*sumCov/n, sumMS/n)
	}
	return nil
}

// ---------------------------------------------------------------------------
// E2 — index materialization fraction (§II-A: 10% is adequate).
func runE2(seed uint64, _ string) error {
	header("E2: inverted-index materialization",
		"materializing 10% of each inverted list is adequate (full quality, ~10% memory)")

	eng, err := buildAuthors(seed, 1200, 0.02)
	if err != nil {
		return err
	}
	full, err := index.Build(eng.Space, 1.0)
	if err != nil {
		return err
	}
	fullMem := full.MemoryBytes()

	// Focal groups for the downstream-quality probe.
	ids := make([]int, eng.Space.Len())
	for i := range ids {
		ids[i] = i
	}
	eng.Space.SortBySize(ids)
	focals := []int{ids[0], ids[len(ids)/4], ids[len(ids)/2]}

	gcfg := greedy.DefaultConfig()
	gcfg.TimeLimit = 50 * time.Millisecond
	gcfg.FeedbackWeight = 0

	// Reference objective with the full index.
	refObj := map[int]float64{}
	refOpt := greedy.New(eng.Space, full)
	for _, f := range focals {
		sel, err := refOpt.SelectNext(eng.Space.Group(f), nil, gcfg)
		if err != nil {
			return err
		}
		refObj[f] = sel.Objective
	}

	fmt.Printf("%-10s %10s %14s %12s %16s %14s\n",
		"fraction", "prefix", "memory (MB)", "% of full", "lookup@512 ns", "objective %")
	for _, frac := range []float64{0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 1.00} {
		ix, err := index.Build(eng.Space, frac)
		if err != nil {
			return err
		}
		ix.DisableFallback = true // expose what the prefix alone delivers
		mem := ix.MemoryBytes()

		// Materialized-lookup latency (the O(1) interaction path).
		t0 := time.Now()
		probes := 0
		for gid := 0; gid < eng.Space.Len(); gid += 7 {
			_ = ix.Neighbors(gid, 512)
			probes++
		}
		lookupNS := float64(time.Since(t0).Nanoseconds()) / float64(probes)

		// Downstream greedy quality using only the prefix.
		opt := greedy.New(eng.Space, ix)
		sumObj := 0.0
		for _, f := range focals {
			sel, err := opt.SelectNext(eng.Space.Group(f), nil, gcfg)
			if err != nil {
				return err
			}
			if refObj[f] > 0 {
				sumObj += sel.Objective / refObj[f]
			} else {
				sumObj++
			}
		}
		fmt.Printf("%-10.2f %10d %14.2f %11.1f%% %16.0f %13.1f%%\n",
			frac, ix.MaterializedLen(focals[0]),
			float64(mem)/(1<<20), 100*float64(mem)/float64(fullMem),
			lookupNS, 100*sumObj/float64(len(focals)))
	}
	return nil
}

// ---------------------------------------------------------------------------
// E3 — the exponential group space (§I: 4 attributes × 5 values ≈ 10^6
// possible groups) vs. what closed frequent mining retains.
func runE3(seed uint64, _ string) error {
	header("E3: group-space explosion vs closed frequent groups",
		"possible groups grow exponentially (~10^6 at 4 attrs × 5 values); mining tames them")

	fmt.Printf("%-8s %-8s %14s %14s %14s\n",
		"attrs", "values", "possible", "closed@1%", "closed@5%")
	r := rng.New(seed)
	for _, a := range []int{2, 3, 4, 5, 6, 8} {
		for _, v := range []int{3, 5, 7} {
			if a >= 6 && v != 5 {
				continue // headline rows only: the §I example crosses 10^6 once action attributes join
			}
			// Synthetic users over a×v uniform attributes.
			users := 2000
			vocabTx := randomDemographics(r.Split(uint64(a*100+v)), users, a, v)
			possible := pow(v+1, a) - 1
			c1, err := countClosed(vocabTx, users/100)
			if err != nil {
				return err
			}
			c5, err := countClosed(vocabTx, users/20)
			if err != nil {
				return err
			}
			fmt.Printf("%-8d %-8d %14d %14d %14d\n", a, v, possible, c1, c5)
		}
	}
	return nil
}

// randomDemographics builds transactions where each of `users` users
// carries one uniform value per attribute — the §I thought experiment
// ("with only four demographic attributes and five values for each").
func randomDemographics(r *rng.RNG, users, attrs, values int) *mining.Transactions {
	vocab := groups.NewVocab()
	ids := make([][]groups.TermID, attrs)
	for a := 0; a < attrs; a++ {
		ids[a] = make([]groups.TermID, values)
		for v := 0; v < values; v++ {
			ids[a][v] = vocab.Intern(fmt.Sprintf("a%d", a), fmt.Sprintf("v%d", v))
		}
	}
	perUser := make([][]groups.TermID, users)
	for u := range perUser {
		terms := make([]groups.TermID, attrs)
		for a := 0; a < attrs; a++ {
			terms[a] = ids[a][r.Intn(values)]
		}
		perUser[u] = terms
	}
	return mining.NewTransactions(vocab, perUser)
}

func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

func countClosed(tx *mining.Transactions, minSup int) (int, error) {
	if minSup < 1 {
		minSup = 1
	}
	gs, err := lcm.New(mining.Options{MinSupport: minSup, MaxGroups: 2_000_000}).
		MineParallel(tx, workersFlag)
	if err != nil {
		return 0, err
	}
	return len(gs), nil
}

// ---------------------------------------------------------------------------
// E4 — expert-set formation (§III Scenario 1: committees of major
// conferences formed in < 10 iterations on average).
func runE4(seed uint64, _ string) error {
	header("E4: expert-set formation (MT)",
		"PC chairs form SIGMOD/VLDB/CIKM-like committees in < 10 iterations on average")

	eng, err := buildAuthors(seed, 2000, 0.02)
	if err != nil {
		return err
	}
	cfg := greedy.DefaultConfig()
	cfg.TimeLimit = 20 * time.Millisecond // iterations, not wall time, are measured

	fmt.Printf("%-10s %10s %12s %12s\n", "venue", "success%", "iterations", "collected")
	totalIter, venues := 0.0, 0
	for _, venue := range []string{"SIGMOD", "VLDB", "CIKM"} {
		target := simulate.CommitteeTarget(eng, venue, 2, 60)
		quota := 30
		if target.Count() < quota {
			quota = target.Count()
		}
		task := simulate.MTTask{
			Target: target, Quota: quota,
			MaxIterations: 20, MaxInspectPerStep: 8,
		}
		res := simulate.RunMTBatchParallel(eng, cfg, task, simulate.NoisyPolicy(0.1), 20, seed, workersFlag)
		fmt.Printf("%-10s %9.0f%% %12.1f %12.1f\n",
			venue, res.SuccessRate*100, res.MeanIterations, res.MeanCollected)
		totalIter += res.MeanIterations
		venues++
	}
	fmt.Printf("\nmean iterations across venues: %.1f (paper: < 10)\n", totalIter/float64(venues))
	return nil
}

// ---------------------------------------------------------------------------
// E5 — discussion groups (§III Scenario 2: 80% satisfaction exploring
// rating data via groups, vs individuals).
func runE5(seed uint64, _ string) error {
	header("E5: discussion groups (ST)",
		"80% satisfaction with group-based exploration of rating data vs individual browsing")

	d, err := datagen.BookCrossing(datagen.SmallScale(seed))
	if err != nil {
		return err
	}
	pcfg := core.DefaultPipelineConfig()
	pcfg.Encode = datagen.BookCrossingEncodeOptions()
	pcfg.MinSupportFrac = 0.02
	eng, err := core.Build(d, pcfg)
	if err != nil {
		return err
	}

	// One task per genre: the seeker's compass is the genre community
	// (all lovers of the genre); she is satisfied by any club-sized
	// group whose members predominantly share her taste — the paper's
	// "group with whom she agrees".
	type genreTask struct {
		genre string
		task  simulate.STTask
	}
	var tasks []genreTask
	for _, genre := range datagen.Genres[:4] {
		want := eng.Space.Vocab.Lookup("favgenre", genre)
		if want < 0 {
			continue
		}
		compass := -1
		for _, g := range eng.Space.Groups() {
			if len(g.Desc) == 1 && g.Desc.Contains(want) {
				compass = g.ID
				break
			}
		}
		if compass < 0 {
			continue
		}
		lovers := eng.Space.Group(compass).Members
		agrees := func(gid int) bool {
			g := eng.Space.Group(gid)
			size := g.Size()
			if size < 20 {
				return false
			}
			return float64(g.Members.IntersectCount(lovers))/float64(size) >= 0.6
		}
		tasks = append(tasks, genreTask{genre, simulate.STTask{
			TargetGroup: compass, MaxIterations: 20, Satisfied: agrees,
		}})
	}

	fmt.Printf("%-28s %12s %12s\n", "condition", "satisfied%", "iterations")
	var groupSat, browseSat float64
	for _, gt := range tasks {
		gcfg := greedy.DefaultConfig()
		gcfg.TimeLimit = 20 * time.Millisecond
		g := simulate.RunSTBatchParallel(eng, gcfg, gt.task, simulate.NoisyPolicy(0.05), 20, seed, workersFlag)
		groupSat += g.SuccessRate

		// Baseline: to be convinced a club exists, the browsing seeker
		// needs quota agreeing readers from the same stream of profiles.
		target := eng.Space.Group(gt.task.TargetGroup).Members
		quota := 25
		b := simulate.RunBrowseBatchParallel(d.NumUsers(), target, quota, 7, 20, 20, seed, workersFlag)
		browseSat += b.SuccessRate
	}
	n := float64(len(tasks))
	fmt.Printf("%-28s %11.0f%% %12s\n", "group-based (VEXUS)", 100*groupSat/n, "—")
	fmt.Printf("%-28s %11.0f%% %12s\n", "individual browsing", 100*browseSat/n, "—")
	fmt.Printf("\n(%d hidden target groups; paper: 80%% group-based satisfaction)\n", len(tasks))
	return nil
}

// ---------------------------------------------------------------------------
// E6 — the k ≤ 7 perception bound (§II-A): larger k buys little.
func runE6(seed uint64, _ string) error {
	header("E6: displayed-group count k",
		"k ≤ 7 matches perception capacity; larger k does not speed up task completion")

	eng, err := buildAuthors(seed, 2000, 0.02)
	if err != nil {
		return err
	}
	target := simulate.CommitteeTarget(eng, "SIGMOD", 2, 60)
	quota := 30
	if target.Count() < quota {
		quota = target.Count()
	}
	task := simulate.MTTask{
		Target: target, Quota: quota,
		MaxIterations: 25, MaxInspectPerStep: 8,
	}

	fmt.Printf("%-6s %10s %12s %14s\n", "k", "success%", "iterations", "step ms")
	for _, k := range []int{3, 5, 7, 10, 15} {
		cfg := greedy.DefaultConfig()
		cfg.K = k
		cfg.TimeLimit = 20 * time.Millisecond
		res := simulate.RunMTBatchParallel(eng, cfg, task, simulate.NoisyPolicy(0.1), 12, seed, workersFlag)

		// Mean optimizer latency at this k.
		opt := greedy.New(eng.Space, eng.Index)
		sel, err := opt.SelectNext(eng.Space.Group(0), nil, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-6d %9.0f%% %12.1f %14.1f\n",
			k, res.SuccessRate*100, res.MeanIterations,
			float64(sel.Elapsed.Microseconds())/1000)
	}
	return nil
}

// ---------------------------------------------------------------------------
// E7 — interaction latency (§II-B: all interactions O(1) except the
// greedy step, which is the bottleneck).
func runE7(seed uint64, _ string) error {
	header("E7: interaction latency by dataset size",
		"non-greedy interactions are O(1)-flat; the greedy Explore step is the bottleneck")

	fmt.Printf("%-8s %12s %12s %12s %12s %12s\n",
		"users", "explore ms", "focus ms", "brush ms", "backtrack µs", "bookmark µs")
	for _, users := range []int{500, 1000, 2000, 4000} {
		eng, err := buildAuthors(seed, users, 0.03)
		if err != nil {
			return err
		}
		sess := eng.NewSession(greedy.DefaultConfig())
		sess.Start()

		t0 := time.Now()
		if _, err := sess.Explore(sess.Shown()[0]); err != nil {
			return err
		}
		exploreMS := float64(time.Since(t0).Microseconds()) / 1000

		t0 = time.Now()
		fv, err := sess.Focus(sess.Focal(), "gender")
		if err != nil {
			return err
		}
		focusMS := float64(time.Since(t0).Microseconds()) / 1000

		t0 = time.Now()
		if err := fv.Brush("gender", "female"); err != nil {
			return err
		}
		brushMS := float64(time.Since(t0).Microseconds()) / 1000

		t0 = time.Now()
		if err := sess.Backtrack(0); err != nil {
			return err
		}
		backtrackUS := float64(time.Since(t0).Nanoseconds()) / 1000

		t0 = time.Now()
		if err := sess.BookmarkGroup(0); err != nil {
			return err
		}
		bookmarkUS := float64(time.Since(t0).Nanoseconds()) / 1000

		fmt.Printf("%-8d %12.1f %12.1f %12.2f %12.1f %12.1f\n",
			users, exploreMS, focusMS, brushMS, backtrackUS, bookmarkUS)
	}
	return nil
}

// ---------------------------------------------------------------------------
// E8 — feedback learning ablation (§II-B): personalization shortens
// tasks; unlearning redirects the trajectory.
func runE8(seed uint64, _ string) error {
	header("E8: feedback-learning ablation",
		"feedback biases subsequent steps toward the explorer's interest; unlearning redirects it")

	eng, err := buildAuthors(seed, 2000, 0.02)
	if err != nil {
		return err
	}

	// The probe: repeatedly click groups described by a chosen term
	// (simulating an explorer interested in it), then measure how many
	// of the displayed groups carry that term. Personalization should
	// raise the share as the feedback weight grows; with w = 0 the
	// display is driven by coverage+diversity alone.
	probe := eng.Space.Vocab.Lookup("topic", "databases")
	if probe < 0 {
		return fmt.Errorf("probe term not interned")
	}
	clickTarget := func(sess *core.Session) int {
		for _, gid := range sess.Shown() {
			if eng.Space.Group(gid).Desc.Contains(probe) {
				return gid
			}
		}
		return sess.Shown()[0]
	}
	fmt.Printf("%-24s %22s %22s\n", "condition", "probe-term share", "mean alignment")
	for _, cond := range []struct {
		name   string
		weight float64
	}{
		{"feedback off (w=0)", 0},
		{"feedback on (w=0.25)", 0.25},
		{"feedback strong (w=1)", 1.0},
	} {
		cfg := greedy.DefaultConfig()
		cfg.FeedbackWeight = cond.weight
		cfg.TimeLimit = 50 * time.Millisecond
		sess := eng.NewSession(cfg)
		sess.Start()
		for step := 0; step < 4; step++ {
			if _, err := sess.Explore(clickTarget(sess)); err != nil {
				return err
			}
		}
		withTerm, n := 0, 0
		sumAlign := 0.0
		for _, gid := range sess.Shown() {
			g := eng.Space.Group(gid)
			if g.Desc.Contains(probe) {
				withTerm++
			}
			sumAlign += sess.Feedback().Alignment(g)
			n++
		}
		fmt.Printf("%-24s %20.0f%% %22.3f\n",
			cond.name, 100*float64(withTerm)/float64(n), sumAlign/float64(n))
	}

	// Unlearning: after the biased walk, delete the probe term and
	// re-explore — the display must move away from it.
	cfg := greedy.DefaultConfig()
	cfg.FeedbackWeight = 1
	cfg.TimeLimit = 50 * time.Millisecond
	sess := eng.NewSession(cfg)
	sess.Start()
	for step := 0; step < 4; step++ {
		if _, err := sess.Explore(clickTarget(sess)); err != nil {
			return err
		}
	}
	before := sess.Shown()
	focal := sess.Focal()
	if err := sess.Unlearn("topic", "databases"); err != nil {
		return err
	}
	if _, err := sess.Explore(focal); err != nil {
		return err
	}
	after := sess.Shown()
	fmt.Printf("\nunlearning topic=databases changed %d of %d displayed groups\n",
		diffCount(before, after), len(after))
	return nil
}

func diffCount(a, b []int) int {
	in := map[int]bool{}
	for _, x := range a {
		in[x] = true
	}
	n := 0
	for _, x := range b {
		if !in[x] {
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// E9 — offline pipeline at BookCrossing scale (§I: 1M ratings,
// 278,858 users, 271,379 books).
func runE9(seed uint64, scale string) error {
	header("E9: offline pipeline scale",
		"the pipeline handles BOOKCROSSING (1M ratings, 278,858 users, 271,379 books)")

	cfg := datagen.SmallScale(seed)
	if scale == "paper" {
		cfg = datagen.PaperScale(seed)
	}
	t0 := time.Now()
	d, err := datagen.BookCrossing(cfg)
	if err != nil {
		return err
	}
	genTime := time.Since(t0)

	pcfg := core.DefaultPipelineConfig()
	pcfg.Encode = datagen.BookCrossingEncodeOptions()
	pcfg.MinSupportFrac = 0.02
	t0 = time.Now()
	eng, err := core.Build(d, pcfg)
	if err != nil {
		return err
	}
	buildTime := time.Since(t0)

	st := eng.Space.ComputeStats()
	fmt.Printf("scale: %d users, %d books, %d ratings (generate %v)\n",
		d.NumUsers(), d.NumItems(), d.NumActions(), genTime.Round(time.Millisecond))
	fmt.Printf("encode: %v   mine: %v   index: %v   total: %v\n",
		eng.Timings.Encode.Round(time.Millisecond),
		eng.Timings.Mine.Round(time.Millisecond),
		eng.Timings.Index.Round(time.Millisecond),
		buildTime.Round(time.Millisecond))
	fmt.Printf("groups: %d (mean size %.1f, coverage %.2f)\n",
		st.NumGroups, st.MeanSize, st.Coverage)

	// One interactive step at this scale (the P3 check).
	sess := eng.NewSession(greedy.DefaultConfig())
	sess.Start()
	sel, err := sess.Explore(sess.Shown()[0])
	if err != nil {
		return err
	}
	fmt.Printf("one Explore step: %v (coverage %.2f, diversity %.2f)\n",
		sel.Elapsed.Round(time.Millisecond), sel.Coverage, sel.Diversity)
	return nil
}

// ---------------------------------------------------------------------------
// P1 — sequential vs parallel wall time for the offline discovery and
// simulation stages (the PR-2 parallelization): lcm.MineParallel and
// simulate.RunMTBatchParallel against their 1-worker runs, which are
// bit-identical by contract. Speedup tops out at the physical core
// count — on a 1-core runner all worker counts time alike.

// benchNoteRow is one seq-vs-parallel measurement in the JSON note.
type benchNoteRow struct {
	Stage      string  `json:"stage"`
	Workers    int     `json:"workers"`
	SeqMS      float64 `json:"seq_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

func runP1(seed uint64, _ string) error {
	header("P1: parallel discovery + simulation",
		"MineParallel and Run*BatchParallel are bit-identical to 1-worker runs; only wall clock changes")

	eng, err := buildAuthors(seed, 2000, 0.02)
	if err != nil {
		return err
	}
	workers := parallel.Workers(workersFlag, 1<<30)
	note := struct {
		Experiment string         `json:"experiment"`
		NumCPU     int            `json:"num_cpu"`
		Seed       uint64         `json:"seed"`
		Rows       []benchNoteRow `json:"rows"`
	}{Experiment: "parallel_mining", NumCPU: runtime.NumCPU(), Seed: seed}

	// Discovery: the full closed-group enumeration on the evaluation
	// transactions.
	opts := mining.Options{MinSupport: 30, MaxLen: 4}
	t0 := time.Now()
	seqGroups, err := lcm.New(opts).Mine(eng.Tx)
	if err != nil {
		return err
	}
	seqMine := time.Since(t0)
	t0 = time.Now()
	parGroups, err := lcm.New(opts).MineParallel(eng.Tx, workers)
	if err != nil {
		return err
	}
	parMine := time.Since(t0)
	if len(parGroups) != len(seqGroups) {
		return fmt.Errorf("p1: parallel mined %d groups, sequential %d", len(parGroups), len(seqGroups))
	}
	note.Rows = append(note.Rows, benchNoteRow{
		Stage: "lcm-mine", Workers: workers,
		SeqMS:      float64(seqMine.Microseconds()) / 1000,
		ParallelMS: float64(parMine.Microseconds()) / 1000,
		Speedup:    float64(seqMine) / float64(parMine),
	})

	// Simulation: an E4-style committee campaign.
	target := simulate.CommitteeTarget(eng, "SIGMOD", 2, 60)
	quota := 30
	if target.Count() < quota {
		quota = target.Count()
	}
	task := simulate.MTTask{Target: target, Quota: quota, MaxIterations: 20, MaxInspectPerStep: 8}
	cfg := greedy.DefaultConfig()
	cfg.TimeLimit = 0 // deterministic: parallel equals sequential exactly
	runs := 24
	t0 = time.Now()
	seqRes := simulate.RunMTBatch(eng, cfg, task, simulate.NoisyPolicy(0.1), runs, seed)
	seqSim := time.Since(t0)
	t0 = time.Now()
	parRes := simulate.RunMTBatchParallel(eng, cfg, task, simulate.NoisyPolicy(0.1), runs, seed, workers)
	parSim := time.Since(t0)
	if seqRes != parRes {
		return fmt.Errorf("p1: parallel MT aggregate %+v != sequential %+v", parRes, seqRes)
	}
	note.Rows = append(note.Rows, benchNoteRow{
		Stage: "mt-batch", Workers: workers,
		SeqMS:      float64(seqSim.Microseconds()) / 1000,
		ParallelMS: float64(parSim.Microseconds()) / 1000,
		Speedup:    float64(seqSim) / float64(parSim),
	})

	fmt.Printf("%-10s %8s %10s %12s %9s\n", "stage", "workers", "seq ms", "parallel ms", "speedup")
	for _, row := range note.Rows {
		fmt.Printf("%-10s %8d %10.1f %12.1f %8.2fx\n",
			row.Stage, row.Workers, row.SeqMS, row.ParallelMS, row.Speedup)
	}
	fmt.Printf("\n%d groups mined; MT aggregate identical across paths (%d runs)\n",
		len(seqGroups), runs)

	enc, err := json.MarshalIndent(note, "", "  ")
	if err != nil {
		return err
	}
	if benchNote != "" {
		if err := os.WriteFile(benchNote, append(enc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("bench note written to %s\n", benchNote)
	} else {
		fmt.Printf("%s\n", enc)
	}
	return nil
}

// ---------------------------------------------------------------------------
// P2 — cold start vs snapshot warm start (the internal/store
// subsystem): a full core.Build against store.LoadFile of the same
// engine's snapshot, which is bit-identical by contract. The snapshot
// skips mining entirely, so warm start should be several times faster
// than cold on any dataset where discovery dominates.

func runP2(seed uint64, _ string) error {
	header("P2: engine snapshot warm start",
		"store.Load returns a bit-identical engine several times faster than a full core.Build")

	d, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 2000, Seed: seed})
	if err != nil {
		return err
	}
	cfg := core.DefaultPipelineConfig()
	cfg.Encode = datagen.DBAuthorsEncodeOptions()
	cfg.MinSupportFrac = 0.02
	cfg.Workers = workersFlag

	t0 := time.Now()
	cold, err := core.Build(d, cfg)
	if err != nil {
		return err
	}
	coldTime := time.Since(t0)

	dir, err := os.MkdirTemp("", "vexus-bench-store")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := dir + "/authors.snap"
	fp := store.ComputeFingerprint(d, cfg)
	t0 = time.Now()
	if err := store.SaveFile(path, cold, fp); err != nil {
		return err
	}
	saveTime := time.Since(t0)
	info, err := os.Stat(path)
	if err != nil {
		return err
	}

	workers := parallel.Workers(workersFlag, 1<<30)
	t0 = time.Now()
	warm, hdr, err := store.LoadFile(path, workersFlag)
	if err != nil {
		return err
	}
	warmTime := time.Since(t0)
	if hdr.Fingerprint != fp {
		return fmt.Errorf("p2: snapshot fingerprint drifted")
	}

	// Bit-identical spot checks: space shape, index lists, and one
	// deterministic greedy step.
	if warm.Space.Len() != cold.Space.Len() {
		return fmt.Errorf("p2: warm space has %d groups, cold %d", warm.Space.Len(), cold.Space.Len())
	}
	for gid := 0; gid < cold.Space.Len(); gid++ {
		if !cold.Space.Group(gid).Members.Equal(warm.Space.Group(gid).Members) {
			return fmt.Errorf("p2: group %d members differ after reload", gid)
		}
		cl, wl := cold.Index.MaterializedList(gid), warm.Index.MaterializedList(gid)
		if len(cl) != len(wl) {
			return fmt.Errorf("p2: group %d inverted list %d vs %d entries", gid, len(wl), len(cl))
		}
		for j := range cl {
			if cl[j] != wl[j] {
				return fmt.Errorf("p2: group %d neighbor %d differs after reload", gid, j)
			}
		}
	}
	gcfg := greedy.DefaultConfig()
	gcfg.TimeLimit = 0
	cs, ws := cold.NewSession(gcfg), warm.NewSession(gcfg)
	cShown, wShown := cs.Start(), ws.Start()
	for i := range cShown {
		if cShown[i] != wShown[i] {
			return fmt.Errorf("p2: initial display slot %d differs after reload", i)
		}
	}
	cSel, err := cs.Explore(cShown[0])
	if err != nil {
		return err
	}
	wSel, err := ws.Explore(wShown[0])
	if err != nil {
		return err
	}
	if cSel.Objective != wSel.Objective || len(cSel.IDs) != len(wSel.IDs) {
		return fmt.Errorf("p2: greedy selection differs after reload")
	}

	speedup := float64(coldTime) / float64(warmTime)
	fmt.Printf("%-14s %12s\n", "stage", "wall ms")
	fmt.Printf("%-14s %12.1f\n", "cold build", float64(coldTime.Microseconds())/1000)
	fmt.Printf("%-14s %12.1f\n", "snapshot save", float64(saveTime.Microseconds())/1000)
	fmt.Printf("%-14s %12.1f\n", "warm load", float64(warmTime.Microseconds())/1000)
	fmt.Printf("\nwarm start %.1fx faster than cold build; snapshot %d KiB; %d groups bit-identical (workers=%d)\n",
		speedup, info.Size()/1024, cold.Space.Len(), workers)

	note := struct {
		Experiment    string  `json:"experiment"`
		NumCPU        int     `json:"num_cpu"`
		Workers       int     `json:"workers"`
		Seed          uint64  `json:"seed"`
		Groups        int     `json:"groups"`
		SnapshotBytes int64   `json:"snapshot_bytes"`
		ColdMS        float64 `json:"cold_ms"`
		SaveMS        float64 `json:"save_ms"`
		WarmMS        float64 `json:"warm_ms"`
		Speedup       float64 `json:"speedup"`
	}{
		Experiment:    "store_warmstart",
		NumCPU:        runtime.NumCPU(),
		Workers:       workers,
		Seed:          seed,
		Groups:        cold.Space.Len(),
		SnapshotBytes: info.Size(),
		ColdMS:        float64(coldTime.Microseconds()) / 1000,
		SaveMS:        float64(saveTime.Microseconds()) / 1000,
		WarmMS:        float64(warmTime.Microseconds()) / 1000,
		Speedup:       speedup,
	}
	enc, err := json.MarshalIndent(note, "", "  ")
	if err != nil {
		return err
	}
	if benchNote != "" {
		if err := os.WriteFile(benchNote, append(enc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("bench note written to %s\n", benchNote)
	} else {
		fmt.Printf("%s\n", enc)
	}
	return nil
}

// ---------------------------------------------------------------------------
// F1 — the architecture diagram of Fig. 1, as the module inventory.
func runF1(_ uint64, _ string) error {
	header("F1: architecture (Fig. 1)", "ETL → group discovery → index generation → exploration modules")
	fmt.Print(`offline:
  internal/etl          ETL (CSV import, cleaning, schema inference)
  internal/dataset      user database [user, item, value] + demographics
  internal/mining       transaction encoding, Miner interface
  internal/mining/lcm      LCM closed frequent itemsets   (datasets)
  internal/mining/momri    alpha-MOMRI multi-objective     (datasets)
  internal/mining/stream   lossy-counting stream miner     (streams)
  internal/mining/birch    BIRCH CF-tree clustering        (streams)
  internal/groups       user-group space + overlap graph G
  internal/index        per-group inverted similarity index (top-10% materialized)
online (internal/core.Session):
  GROUPVIZ  internal/greedy + internal/viz   k diverse+covering groups, force layout
  CONTEXT   internal/feedback                normalized profile, unlearn
  STATS     internal/crossfilter + internal/lda   coordinated histograms, 2D focus view
  HISTORY   core.Session.Backtrack           navigation trail
  MEMO      core.Memo                        bookmarked groups/users (Save)
`)
	return nil
}
