package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"vexus/internal/serve"
)

// ---------------------------------------------------------------------------
// P4 — SSE diff-push latency + fan-out cost (the server-push half of
// the exploration loop): one session, N attached watchers, a driver
// applying explore actions. Two numbers matter: what an attached
// watcher pays to learn about a mutation (end-to-end push latency,
// measured from the driver's POST start to the matching diff event
// arriving on a subscriber), and what the write path pays for fan-out
// (per-action apply time as N grows — publish is a non-blocking
// bounded-queue send per subscriber, so this should stay flat).

func runP4(seed uint64, _ string) error {
	header("P4: SSE diff-push fan-out",
		"diff streams deliver every mutation to N watchers at millisecond latency without slowing the write path")

	eng, err := buildAuthors(seed, 1000, 0.02)
	if err != nil {
		return err
	}
	s := serve.New(eng, greedyDet(), serve.DefaultConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Routes())
	defer ts.Close()

	levels := []int{0, 1, 4, 16, 64}
	const actions = 60

	type row struct {
		Subscribers int     `json:"subscribers"`
		Actions     int     `json:"actions"`
		ApplyMS     float64 `json:"apply_ms_per_action"`
		PushMS      float64 `json:"push_latency_ms_mean"`
	}
	rows := make([]row, 0, len(levels))

	fmt.Printf("%-12s %8s %14s %16s\n", "subscribers", "actions", "apply ms/act", "push latency ms")
	for _, n := range levels {
		st, err := createSession(ts.URL)
		if err != nil {
			return err
		}
		subs := make([]*benchStream, n)
		for i := range subs {
			sub, err := openBenchStream(ts.URL, st.Session, actions+8)
			if err != nil {
				return fmt.Errorf("subscriber %d: %w", i, err)
			}
			subs[i] = sub
		}

		var applyTotal, pushTotal time.Duration
		cur := st
		for i := 0; i < actions; i++ {
			t0 := time.Now()
			next, err := applyExplore(ts.URL, st.Session, cur.Shown[i%2].ID)
			if err != nil {
				return fmt.Errorf("action %d at fan-out %d: %w", i, n, err)
			}
			applyTotal += time.Since(t0)
			if n > 0 {
				// Create is mutation 1, so action i lands as diff id i+2.
				at, err := subs[0].waitFor(uint64(i + 2))
				if err != nil {
					return fmt.Errorf("push %d at fan-out %d: %w", i, n, err)
				}
				pushTotal += at.Sub(t0)
			}
			cur = next
		}
		for _, sub := range subs {
			sub.close()
		}

		applyMS := float64(applyTotal.Microseconds()) / 1000 / actions
		pushMS := 0.0
		if n > 0 {
			pushMS = float64(pushTotal.Microseconds()) / 1000 / actions
		}
		rows = append(rows, row{Subscribers: n, Actions: actions, ApplyMS: applyMS, PushMS: pushMS})
		if n == 0 {
			fmt.Printf("%-12d %8d %14.3f %16s\n", n, actions, applyMS, "-")
		} else {
			fmt.Printf("%-12d %8d %14.3f %16.3f\n", n, actions, applyMS, pushMS)
		}
	}

	base, top := rows[0].ApplyMS, rows[len(rows)-1].ApplyMS
	fmt.Printf("\nfan-out %dx subscribers multiplies apply time %.2fx (bounded-queue publish: watchers ride along, writers never wait)\n",
		levels[len(levels)-1], top/base)

	note := struct {
		Experiment string `json:"experiment"`
		NumCPU     int    `json:"num_cpu"`
		Seed       uint64 `json:"seed"`
		Rows       []row  `json:"rows"`
	}{
		Experiment: "sse_fanout",
		NumCPU:     runtime.NumCPU(),
		Seed:       seed,
		Rows:       rows,
	}
	enc, err := json.MarshalIndent(note, "", "  ")
	if err != nil {
		return err
	}
	if benchNote != "" {
		if err := os.WriteFile(benchNote, append(enc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("bench note written to %s\n", benchNote)
	} else {
		fmt.Printf("%s\n", enc)
	}
	return nil
}

// benchStream is a minimal SSE consumer: a parser goroutine feeds diff
// event ids (with arrival times) to a buffered channel. Buffer it for
// the whole run — non-designated subscribers are never read and must
// not stall their parser, or they would measure the server's overflow
// path instead of its fan-out path.
type benchStream struct {
	res *http.Response
	ids chan benchEventAt
}

type benchEventAt struct {
	id uint64
	at time.Time
}

func openBenchStream(base, sid string, buffer int) (*benchStream, error) {
	res, err := http.DefaultClient.Get(base + "/api/v1/sessions/" + sid + "/events")
	if err != nil {
		return nil, err
	}
	if res.StatusCode != http.StatusOK {
		res.Body.Close()
		return nil, fmt.Errorf("events: status %d", res.StatusCode)
	}
	s := &benchStream{res: res, ids: make(chan benchEventAt, buffer)}
	go func() {
		defer close(s.ids)
		sc := bufio.NewScanner(res.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "id: ") {
				continue
			}
			id, err := strconv.ParseUint(line[len("id: "):], 10, 64)
			if err != nil {
				continue
			}
			select {
			case s.ids <- benchEventAt{id: id, at: time.Now()}:
			default: // buffer full — drop; only the designated reader waits
			}
		}
	}()
	return s, nil
}

// waitFor blocks until the event with the given id arrives and returns
// its arrival time.
func (s *benchStream) waitFor(id uint64) (time.Time, error) {
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev, ok := <-s.ids:
			if !ok {
				return time.Time{}, fmt.Errorf("stream ended before id %d", id)
			}
			if ev.id == id {
				return ev.at, nil
			}
		case <-deadline:
			return time.Time{}, fmt.Errorf("timed out waiting for id %d", id)
		}
	}
}

func (s *benchStream) close() { s.res.Body.Close() }
