package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/dataset"
	"vexus/internal/parallel"
	"vexus/internal/rng"
	"vexus/internal/store"
)

// ---------------------------------------------------------------------------
// P5 — live ingestion (the versioned-engine subsystem): batch ingest
// throughput, version-swap latency (one Ingest is one deterministic
// re-pipeline), and warm-load cost of a base+delta snapshot against
// the same snapshot compacted. Ingest(batch) is bit-identical to
// core.Build over the augmented dataset by contract, so the rows/s
// figure prices the rebuild an ingest amortizes over its rows.

// p5Batch synthesizes one valid dbauthors ingest batch: usersPer new
// authors with uniform demographics and 1–3 venue actions each. Ids
// continue from *next so consecutive batches never collide.
func p5Batch(r *rng.RNG, next *int, usersPer int) core.IngestBatch {
	genders := []string{"female", "male"}
	seniorities := []string{"junior", "senior", "very senior"}
	var b core.IngestBatch
	for i := 0; i < usersPer; i++ {
		id := fmt.Sprintf("live%05d", *next)
		*next++
		b.Users = append(b.Users, dataset.NewUser{
			ID: id,
			Demo: map[string]string{
				"gender":    genders[r.Intn(len(genders))],
				"seniority": seniorities[r.Intn(len(seniorities))],
				"country":   datagen.Countries[r.Intn(len(datagen.Countries))],
				"topic":     datagen.Topics[r.Intn(len(datagen.Topics))],
			},
			Numeric: map[string]float64{"pubrate": float64(1 + r.Intn(100))},
		})
		for k, nk := 0, 1+r.Intn(3); k < nk; k++ {
			b.Actions = append(b.Actions, dataset.NewAction{
				User:  id,
				Item:  datagen.Venues[r.Intn(len(datagen.Venues))],
				Value: 1,
				Time:  2018,
			})
		}
	}
	return b
}

func runP5(seed uint64, _ string) error {
	header("P5: live dataset ingestion",
		"Ingest(batch) rebuilds bit-identically to Build(augmented); base+delta snapshots warm-load and compact")

	d, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 2000, Seed: seed})
	if err != nil {
		return err
	}
	cfg := core.DefaultPipelineConfig()
	cfg.Encode = datagen.DBAuthorsEncodeOptions()
	cfg.MinSupportFrac = 0.02
	cfg.Workers = workersFlag
	workers := parallel.Workers(workersFlag, 1<<30)

	t0 := time.Now()
	base, err := core.Build(d, cfg)
	if err != nil {
		return err
	}
	buildTime := time.Since(t0)

	dir, err := os.MkdirTemp("", "vexus-bench-ingest")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := dir + "/live.snap"
	fp := store.ComputeFingerprint(d, cfg)
	if err := store.SaveFile(path, base, fp); err != nil {
		return err
	}

	// Ingest ladder: each batch is one version swap and one DLTA append.
	const batches, usersPer = 4, 50
	r := rng.New(seed).Split(99)
	cur := base
	rows, next := 0, 0
	var swapMS []float64
	t0 = time.Now()
	for i := 0; i < batches; i++ {
		b := p5Batch(r, &next, usersPer)
		b.Seq = cur.Version()
		ti := time.Now()
		ne, err := cur.Ingest(b)
		if err != nil {
			return fmt.Errorf("p5: batch %d: %w", i+1, err)
		}
		swapMS = append(swapMS, float64(time.Since(ti).Microseconds())/1000)
		if err := store.AppendDeltaFile(path, b, store.ChainFingerprint(fp, ne.Lineage())); err != nil {
			return fmt.Errorf("p5: append delta %d: %w", i+1, err)
		}
		rows += len(b.Users) + len(b.Actions)
		cur = ne
	}
	ingestTime := time.Since(t0)
	rowsPerSec := float64(rows) / ingestTime.Seconds()
	deltaInfo, err := os.Stat(path)
	if err != nil {
		return err
	}

	// Warm load of base + all pending deltas (one replayed rebuild).
	t0 = time.Now()
	fromDeltas, err := store.LoadFileFresh(path, fp, workersFlag)
	if err != nil {
		return fmt.Errorf("p5: load base+delta: %w", err)
	}
	deltaLoad := time.Since(t0)
	if fromDeltas.Version() != cur.Version() || fromDeltas.Space.Len() != cur.Space.Len() {
		return fmt.Errorf("p5: base+delta load at version %d/%d groups, want %d/%d",
			fromDeltas.Version(), fromDeltas.Space.Len(), cur.Version(), cur.Space.Len())
	}

	// Compacted rewrite of the same engine, then its warm load.
	compacted := dir + "/compacted.snap"
	if err := store.SaveFile(compacted, cur, fp); err != nil {
		return err
	}
	compInfo, err := os.Stat(compacted)
	if err != nil {
		return err
	}
	t0 = time.Now()
	fromCompact, err := store.LoadFileFresh(compacted, fp, workersFlag)
	if err != nil {
		return fmt.Errorf("p5: load compacted: %w", err)
	}
	compactLoad := time.Since(t0)
	if fromCompact.Version() != cur.Version() || fromCompact.Space.Len() != cur.Space.Len() {
		return fmt.Errorf("p5: compacted load diverged")
	}

	meanSwap, maxSwap := 0.0, 0.0
	for _, ms := range swapMS {
		meanSwap += ms
		if ms > maxSwap {
			maxSwap = ms
		}
	}
	meanSwap /= float64(len(swapMS))

	fmt.Printf("%-24s %12s\n", "stage", "value")
	fmt.Printf("%-24s %11.1fms\n", "cold build", float64(buildTime.Microseconds())/1000)
	fmt.Printf("%-24s %11.1fms\n", "mean version swap", meanSwap)
	fmt.Printf("%-24s %11.1fms\n", "max version swap", maxSwap)
	fmt.Printf("%-24s %12.0f\n", "ingest rows/s", rowsPerSec)
	fmt.Printf("%-24s %11.1fms\n", "warm load base+delta", float64(deltaLoad.Microseconds())/1000)
	fmt.Printf("%-24s %11.1fms\n", "warm load compacted", float64(compactLoad.Microseconds())/1000)
	fmt.Printf("\n%d batches (%d rows) → engine version %d; base+delta %d KiB vs compacted %d KiB (workers=%d)\n",
		batches, rows, cur.Version(), deltaInfo.Size()/1024, compInfo.Size()/1024, workers)

	note := struct {
		Experiment     string    `json:"experiment"`
		NumCPU         int       `json:"num_cpu"`
		Workers        int       `json:"workers"`
		Seed           uint64    `json:"seed"`
		Batches        int       `json:"batches"`
		Rows           int       `json:"rows"`
		EngineVersion  uint64    `json:"engine_version"`
		BuildMS        float64   `json:"build_ms"`
		SwapMS         []float64 `json:"swap_ms"`
		RowsPerSec     float64   `json:"rows_per_sec"`
		DeltaBytes     int64     `json:"delta_snapshot_bytes"`
		CompactedBytes int64     `json:"compacted_snapshot_bytes"`
		DeltaLoadMS    float64   `json:"warm_load_delta_ms"`
		CompactLoadMS  float64   `json:"warm_load_compacted_ms"`
	}{
		Experiment:     "ingest",
		NumCPU:         runtime.NumCPU(),
		Workers:        workers,
		Seed:           seed,
		Batches:        batches,
		Rows:           rows,
		EngineVersion:  cur.Version(),
		BuildMS:        float64(buildTime.Microseconds()) / 1000,
		SwapMS:         swapMS,
		RowsPerSec:     rowsPerSec,
		DeltaBytes:     deltaInfo.Size(),
		CompactedBytes: compInfo.Size(),
		DeltaLoadMS:    float64(deltaLoad.Microseconds()) / 1000,
		CompactLoadMS:  float64(compactLoad.Microseconds()) / 1000,
	}
	enc, err := json.MarshalIndent(note, "", "  ")
	if err != nil {
		return err
	}
	if benchNote != "" {
		if err := os.WriteFile(benchNote, append(enc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("bench note written to %s\n", benchNote)
	} else {
		fmt.Printf("%s\n", enc)
	}
	return nil
}
