// vexus-gen emits synthetic user datasets as CSV in the format the ETL
// stage imports: a demographic table (user,<attr>,...) and an action
// table (user,item,value,ts). Both generators are seeded and scale to
// arbitrary sizes; `-dataset bookcrossing -scale paper` reproduces the
// cardinalities quoted in the paper (1M ratings, 278,858 users,
// 271,379 books).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vexus/internal/datagen"
	"vexus/internal/dataset"
	"vexus/internal/etl"
)

func main() {
	var (
		which = flag.String("dataset", "dbauthors", "dbauthors | bookcrossing")
		n     = flag.Int("n", 1000, "number of users (dbauthors) ")
		scale = flag.String("scale", "small", "bookcrossing scale: small | paper")
		seed  = flag.Uint64("seed", 42, "generator seed")
		out   = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	var (
		d   *dataset.Dataset
		err error
	)
	switch *which {
	case "dbauthors":
		d, err = datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: *n, Seed: *seed})
	case "bookcrossing":
		cfg := datagen.SmallScale(*seed)
		if *scale == "paper" {
			cfg = datagen.PaperScale(*seed)
		}
		d, err = datagen.BookCrossing(cfg)
	default:
		log.Fatalf("unknown dataset %q", *which)
	}
	if err != nil {
		log.Fatal(err)
	}

	usersPath := *out + "/" + *which + "-users.csv"
	actionsPath := *out + "/" + *which + "-actions.csv"
	writeCSV(usersPath, func(f *os.File) error { return etl.WriteUsers(f, d) })
	writeCSV(actionsPath, func(f *os.File) error { return etl.WriteActions(f, d) })
	fmt.Printf("wrote %s (%d users) and %s (%d actions)\n",
		usersPath, d.NumUsers(), actionsPath, d.NumActions())
}

func writeCSV(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		log.Fatal(err)
	}
}
