package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/greedy"
)

func scriptEngine(t *testing.T) *core.Engine {
	t.Helper()
	d, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultPipelineConfig()
	cfg.MinSupportFrac = 0.03
	eng, err := core.Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func detGreedy() greedy.Config {
	cfg := greedy.DefaultConfig()
	cfg.TimeLimit = 0
	return cfg
}

func TestRunScriptReplaysLog(t *testing.T) {
	eng := scriptEngine(t)
	path := filepath.Join(t.TempDir(), "actions.json")
	log := `[
		{"op":"start"},
		{"op":"explore","group":0},
		{"op":"focus","group":0},
		{"op":"bookmarkGroup","group":0}
	]`
	if err := os.WriteFile(path, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	sess, err := runScript(eng, detGreedy(), path, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.Log) != 4 {
		t.Fatalf("replayed %d actions, want 4", len(sess.Log))
	}
	if sess.Sess.Focal() != 0 {
		t.Fatalf("focal = %d, want 0", sess.Sess.Focal())
	}
	if sess.Focus == nil || sess.Focus.GroupID != 0 {
		t.Fatal("focus view not opened by replay")
	}
	if !sess.Sess.Memo().HasGroup(0) {
		t.Fatal("bookmark not replayed")
	}
	if lines := strings.Count(out.String(), "\n"); lines != 4 {
		t.Fatalf("printed %d summary lines, want 4:\n%s", lines, out.String())
	}
}

func TestRunScriptReportsFailingPosition(t *testing.T) {
	eng := scriptEngine(t)
	path := filepath.Join(t.TempDir(), "actions.json")
	log := `[{"op":"start"},{"op":"explore","group":-3},{"op":"start"}]`
	if err := os.WriteFile(path, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	sess, err := runScript(eng, detGreedy(), path, &out)
	if err == nil {
		t.Fatal("bad script replayed without error")
	}
	if !strings.Contains(err.Error(), "action 1") {
		t.Fatalf("error %q does not name the failing position", err)
	}
	if len(sess.Log) != 1 {
		t.Fatalf("prefix of %d actions applied, want 1", len(sess.Log))
	}
}

func TestRunScriptRejectsMalformed(t *testing.T) {
	eng := scriptEngine(t)
	path := filepath.Join(t.TempDir(), "actions.json")
	if err := os.WriteFile(path, []byte(`[{"op":"explore","bogus":1}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runScript(eng, detGreedy(), path, &bytes.Buffer{}); err == nil {
		t.Fatal("malformed action accepted")
	}
	if _, err := runScript(eng, detGreedy(), filepath.Join(t.TempDir(), "missing.json"), &bytes.Buffer{}); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestExampleScriptReplays keeps the checked-in sample log valid
// against the default synthetic dataset's group space.
func TestExampleScriptReplays(t *testing.T) {
	eng := scriptEngine(t)
	if _, err := runScript(eng, detGreedy(), "../../examples/scripts/expert-set.json", &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}
