package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vexus/internal/core"
	"vexus/internal/viz"
)

// repl drives an interactive exploration session over stdin/stdout.
func repl(sess *core.Session) {
	eng := sess.Engine()
	var focus *core.FocusView
	printGroups(sess)

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("vexus> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("vexus> ")
			continue
		}
		cmd, args := fields[0], fields[1:]
		switch cmd {
		case "quit", "exit", "q":
			return

		case "show":
			printGroups(sess)

		case "go":
			idx, ok := argIndex(args, len(sess.Shown()))
			if !ok {
				fmt.Println("usage: go <display-index>")
				break
			}
			gid := sess.Shown()[idx]
			sel, err := sess.Explore(gid)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Printf("explored %q — coverage %.2f, diversity %.2f in %v\n",
				eng.GroupLabel(gid), sel.Coverage, sel.Diversity, sel.Elapsed.Round(1e5))
			focus = nil
			printGroups(sess)

		case "focus":
			idx, ok := argIndex(args, len(sess.Shown()))
			if !ok {
				fmt.Println("usage: focus <display-index>")
				break
			}
			var err error
			focus, err = sess.Focus(sess.Shown()[idx], "")
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			printStats(focus)

		case "brush":
			if focus == nil || len(args) < 2 {
				fmt.Println("usage: focus <n> first, then brush <attr> <value…>")
				break
			}
			if err := focus.Brush(args[0], args[1:]...); err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Printf("%d members selected\n", focus.SelectedCount())

		case "clear":
			if focus == nil || len(args) < 1 {
				fmt.Println("usage: clear <attr>")
				break
			}
			if err := focus.ClearBrush(args[0]); err != nil {
				fmt.Println("error:", err)
			}

		case "table":
			if focus == nil {
				fmt.Println("focus a group first")
				break
			}
			for _, row := range focus.Table(15) {
				fmt.Printf("  %-14s %4d actions  %v\n", row.ID, row.NumAct, row.Demo)
			}

		case "context":
			for _, e := range sess.Context(10) {
				fmt.Printf("  %-40s %.3f\n", e.Label, e.Score)
			}

		case "unlearn":
			if len(args) != 1 || !strings.Contains(args[0], "=") {
				fmt.Println("usage: unlearn field=value")
				break
			}
			parts := strings.SplitN(args[0], "=", 2)
			if err := sess.Unlearn(parts[0], parts[1]); err != nil {
				fmt.Println("error:", err)
			}

		case "history":
			for i, st := range sess.History() {
				label := "start"
				if st.Focal >= 0 {
					label = eng.GroupLabel(st.Focal)
				}
				fmt.Printf("  %d: %s\n", i, label)
			}

		case "back":
			idx, ok := argIndex(args, len(sess.History()))
			if !ok {
				fmt.Println("usage: back <history-index>")
				break
			}
			if err := sess.Backtrack(idx); err != nil {
				fmt.Println("error:", err)
				break
			}
			focus = nil
			printGroups(sess)

		case "mark":
			idx, ok := argIndex(args, len(sess.Shown()))
			if !ok {
				fmt.Println("usage: mark <display-index>")
				break
			}
			if err := sess.BookmarkGroup(sess.Shown()[idx]); err != nil {
				fmt.Println("error:", err)
			}

		case "marku":
			if len(args) != 1 {
				fmt.Println("usage: marku <user-id>")
				break
			}
			u := eng.Data.UserIndex(args[0])
			if u < 0 {
				fmt.Println("unknown user")
				break
			}
			if err := sess.BookmarkUser(u); err != nil {
				fmt.Println("error:", err)
			}

		case "memo":
			m := sess.Memo()
			for _, gid := range m.Groups() {
				fmt.Printf("  group: %s\n", eng.GroupLabel(gid))
			}
			for _, u := range m.Users() {
				fmt.Printf("  user:  %s\n", eng.Data.Users[u].ID)
			}

		case "help":
			fmt.Println("commands: show go focus brush clear table context unlearn history back mark marku memo quit")

		default:
			fmt.Printf("unknown command %q (try help)\n", cmd)
		}
		fmt.Print("vexus> ")
	}
}

func argIndex(args []string, n int) (int, bool) {
	if len(args) != 1 {
		return 0, false
	}
	idx, err := strconv.Atoi(args[0])
	if err != nil || idx < 0 || idx >= n {
		return 0, false
	}
	return idx, true
}

func printGroups(sess *core.Session) {
	eng := sess.Engine()
	rows := make([]viz.ASCIIGroupRow, 0, len(sess.Shown()))
	for _, gid := range sess.Shown() {
		rows = append(rows, viz.ASCIIGroupRow{
			Label:     eng.GroupLabel(gid),
			Size:      eng.Space.Group(gid).Size(),
			Highlight: gid == sess.Focal(),
		})
	}
	fmt.Print(viz.ASCIIGroups(rows, 24))
}

func printStats(fv *core.FocusView) {
	fmt.Printf("focused: %d members\n", len(fv.Members))
	for _, attr := range fv.Attributes() {
		labels, counts, err := fv.Histogram(attr)
		if err != nil {
			continue
		}
		fmt.Print(viz.ASCIIHistogram(attr, labels, counts, 30))
	}
	if fv.Projection != nil {
		fmt.Printf("focus view: %s projection, %.0f%% mass on 2 axes\n",
			fv.Projection.Method, fv.Projection.ExplainedRatio*100)
	}
}
