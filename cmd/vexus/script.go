package main

import (
	"fmt"
	"io"
	"os"

	"vexus/internal/action"
	"vexus/internal/core"
	"vexus/internal/greedy"
)

// runScript replays an action log through the engine — the
// non-interactive twin of the REPL, driving the exact dispatcher the
// server and the simulator use. The file is either a bare JSON array
// of actions or a v2 saved session ({"actions":[...]}). Each applied
// action prints a one-line diff summary; a failing action aborts with
// its position, leaving the prefix applied. Returns the session for
// the caller to render or save.
func runScript(eng *core.Engine, gcfg greedy.Config, path string, out io.Writer) (*action.Session, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	acts, err := action.DecodeLog(raw)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	sess := action.New(eng, gcfg)
	for i, a := range acts {
		res, err := action.Apply(sess, a)
		if err != nil {
			return sess, fmt.Errorf("%s: action %d (%s): %w", path, i, a, err)
		}
		fmt.Fprintf(out, "%3d %-13s %s\n", i, a.Op, summarize(res))
	}
	return sess, nil
}

// summarize renders one applied action's diff as a compact line.
func summarize(res action.Result) string {
	d := res.Diff
	s := fmt.Sprintf("+%d/-%d shown", len(d.ShownAdded), len(d.ShownRemoved))
	if d.FocalChanged {
		s += fmt.Sprintf(", focal→%d", d.Focal)
	}
	if n := len(d.ContextAdded) + len(d.ContextRemoved); n > 0 {
		s += fmt.Sprintf(", %d context", n)
	}
	if n := len(d.MemoGroupsAdded) + len(d.MemoUsersAdded); n > 0 {
		s += fmt.Sprintf(", +%d memo", n)
	}
	if d.Focus != nil {
		s += fmt.Sprintf(", focus %d (%d selected)", d.Focus.Group, d.Focus.Selected)
	}
	if res.Metrics != nil {
		s += fmt.Sprintf(" — coverage %.2f, diversity %.2f", res.Metrics.Coverage, res.Metrics.Diversity)
	}
	return s
}
