// vexus is the terminal client: it loads user data (synthetic or CSV),
// runs the offline pipeline, and opens an interactive exploration REPL
// with text renderings of the five visual modules — GROUPVIZ as a
// bubble table, CONTEXT, STATS histograms, HISTORY and MEMO.
//
// Commands inside the REPL:
//
//	show                 redisplay the current groups
//	go <n>               explore the n-th displayed group
//	focus <n>            open STATS on the n-th displayed group
//	brush <attr> <val>   constrain the focused group's members
//	table                list selected members of the focused group
//	context              show the feedback profile
//	unlearn <field=val>  delete a value from the profile
//	history              show the trail; back <i> backtracks
//	mark <n> / marku <id> bookmark group / user
//	memo                 show bookmarks
//	quit
//
// With -script actions.json the client runs non-interactively instead:
// the file (a bare JSON array of actions, or a v2 saved session) is
// replayed through internal/action.Apply — the same dispatcher behind
// the HTTP API and the simulator — printing a per-action diff summary
// and the final display. See examples/scripts/ for a sample log.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/dataset"
	"vexus/internal/etl"
	"vexus/internal/greedy"
	"vexus/internal/mining"
	"vexus/internal/store"
)

func main() {
	var (
		which   = flag.String("dataset", "dbauthors", "dbauthors | bookcrossing | csv")
		n       = flag.Int("n", 1000, "synthetic user count")
		seed    = flag.Uint64("seed", 42, "generator seed")
		users   = flag.String("users", "", "users CSV (with -dataset csv)")
		actions = flag.String("actions", "", "actions CSV (with -dataset csv)")
		minSup  = flag.Float64("minsup", 0.02, "minimum group support fraction")
		k       = flag.Int("k", 7, "groups per display (paper: ≤7)")
		workers = flag.Int("workers", 0, "offline pipeline + snapshot-load workers (0 = NumCPU; any value builds a bit-identical engine)")
		snap    = flag.String("snapshot", "", "engine snapshot file for warm starts: loaded when its content address (hash of dataset + pipeline config) matches, rebuilt and overwritten when stale — a snapshot never silently serves outdated groups")
		script  = flag.String("script", "", "replay an action log (JSON array of actions, or a v2 saved session) instead of opening the REPL")
	)
	flag.Parse()

	d, encode, err := loadData(*which, *n, *seed, *users, *actions)
	if err != nil {
		log.Fatal(err)
	}
	pcfg := core.DefaultPipelineConfig()
	pcfg.Encode = encode
	pcfg.MinSupportFrac = *minSup
	pcfg.Workers = *workers
	fmt.Printf("building groups over %d users …\n", d.NumUsers())
	start := time.Now()
	eng, warm, err := store.BuildOrLoad(*snap, d, pcfg)
	if eng == nil {
		log.Fatal(err)
	}
	if err != nil {
		fmt.Printf("warning: %v\n", err)
	}
	if warm {
		fmt.Printf("%d groups (%s) warm-loaded from %s in %v\n\n",
			eng.Space.Len(), eng.Miner, *snap, time.Since(start).Round(1e6))
	} else {
		fmt.Printf("%d groups mined (%s) in %v; index: %v\n\n",
			eng.Space.Len(), eng.Miner, eng.Timings.Mine.Round(1e6), eng.Timings.Index.Round(1e6))
	}

	gcfg := greedy.DefaultConfig()
	gcfg.K = *k
	if *script != "" {
		as, err := runScript(eng, gcfg, *script, os.Stdout)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nreplayed %d actions; final display:\n", len(as.Log))
		printGroups(as.Sess)
		return
	}
	sess := eng.NewSession(gcfg)
	sess.Start()
	repl(sess)
}

// loadData resolves the dataset flag into data plus the encoding
// options appropriate to it.
func loadData(which string, n int, seed uint64, usersPath, actionsPath string) (*dataset.Dataset, mining.EncodeOptions, error) {
	switch which {
	case "dbauthors":
		d, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: n, Seed: seed})
		return d, datagen.DBAuthorsEncodeOptions(), err
	case "bookcrossing":
		cfg := datagen.SmallScale(seed)
		cfg.NumUsers = n
		d, err := datagen.BookCrossing(cfg)
		return d, datagen.BookCrossingEncodeOptions(), err
	case "csv":
		if usersPath == "" || actionsPath == "" {
			return nil, mining.EncodeOptions{}, fmt.Errorf("-dataset csv requires -users and -actions")
		}
		d, err := loadCSV(usersPath, actionsPath)
		return d, mining.DefaultEncodeOptions(), err
	default:
		return nil, mining.EncodeOptions{}, fmt.Errorf("unknown dataset %q", which)
	}
}

// loadCSV infers the demographic schema from the users file, then
// imports both tables through the ETL stage.
func loadCSV(usersPath, actionsPath string) (*dataset.Dataset, error) {
	uf, err := os.Open(usersPath)
	if err != nil {
		return nil, err
	}
	schema, _, err := etl.InferSchema(uf, etl.DefaultInferOptions())
	uf.Close()
	if err != nil {
		return nil, fmt.Errorf("inferring schema: %w", err)
	}

	b := dataset.NewBuilder(schema)
	urep, err := etl.LoadUsersFile(usersPath, b, schema, etl.DefaultRules())
	if err != nil {
		return nil, fmt.Errorf("loading users: %w", err)
	}
	arep, err := etl.LoadActionsFile(actionsPath, b, b.HasUser, etl.DefaultRules())
	if err != nil {
		return nil, fmt.Errorf("loading actions: %w", err)
	}
	fmt.Printf("ETL: %d user rows kept, %d action rows kept (%d dropped)\n",
		urep.RowsKept, arep.RowsKept, urep.RowsDropped+arep.RowsDropped)
	return b.Build()
}
