// vexus-server exposes one exploration session over HTTP: a JSON API
// plus a self-contained HTML page that renders the five modules of
// Fig. 2 — GROUPVIZ (server-rendered force-layout SVG), CONTEXT,
// STATS histograms with brushing, HISTORY with backtrack, and MEMO.
// Everything is standard library; the page uses no external assets.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/greedy"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:8080", "listen address")
		n      = flag.Int("n", 1000, "synthetic researcher count")
		seed   = flag.Uint64("seed", 42, "generator seed")
		minSup = flag.Float64("minsup", 0.02, "minimum group support fraction")
	)
	flag.Parse()

	data, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: *n, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	pcfg := core.DefaultPipelineConfig()
	pcfg.Encode = datagen.DBAuthorsEncodeOptions()
	pcfg.MinSupportFrac = *minSup
	eng, err := core.Build(data, pcfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("offline pipeline: %d groups over %d users (mine %v, index %v)",
		eng.Space.Len(), data.NumUsers(), eng.Timings.Mine, eng.Timings.Index)

	srv := newServer(eng, greedy.DefaultConfig())
	log.Printf("VEXUS listening on http://%s", *addr)
	if err := http.ListenAndServe(*addr, srv.routes()); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}
