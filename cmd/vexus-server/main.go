// vexus-server exposes multi-session exploration over HTTP: a JSON API
// plus a self-contained HTML page that renders the five modules of
// Fig. 2 — GROUPVIZ (server-rendered force-layout SVG), CONTEXT,
// STATS histograms with brushing, HISTORY with backtrack, and MEMO.
// Idle sessions expire after -session-ttl; at -max-sessions the
// least-recently-used one is evicted. Everything is standard library;
// the page uses no external assets. The server itself lives in
// internal/serve (so the cluster gateway and the benchmarks can embed
// it); this binary is the flag wiring.
//
// # The v1 action API
//
// /api/v1 is the typed exploration-action API (internal/action), the
// only mutation surface:
//
//	POST   /api/v1/sessions?dataset=           → 201, full state + ETag
//	DELETE /api/v1/sessions/{sid}              → 204
//	GET    /api/v1/sessions/{sid}/state        → full state; If-None-Match honored (304)
//	GET    /api/v1/state?sid=                  → same, legacy address shape
//	POST   /api/v1/sessions/{sid}/actions      → apply an action batch
//
// The actions body is a JSON array of typed actions ({"op":"explore",
// "group":3}, {"op":"brush","attr":"gender","values":["female"]}, …;
// vocabulary in internal/action). Decoding is strict: unknown fields,
// unknown ops and operands that do not belong to an op are rejected.
// Batches apply in order under the session lock and stop at the first
// failure; the response reports, per applied action, the optimizer
// metrics (explore) and a state *diff*; with ?full=1 a successful
// batch returns the full state snapshot instead. The ETag header
// always reflects the state after the applied prefix and equals
// `"<sid>.<mutations>"`. The bundled page posts these batches; the
// former legacy one-action endpoints (/api/explore, /api/backtrack,
// /api/focus, /api/brush, /api/unlearn, /api/bookmark) are gone.
// Session lifecycle keeps its legacy twins (POST /api/session → 200,
// DELETE /api/session?sid=) alongside /api/v1/sessions, and the read
// endpoints (/api/state, /api/sessions, /api/datasets, the SVGs)
// are unchanged.
//
// # Deployment shapes
//
//   - Single dataset (default): the synthetic dataset named by -n /
//     -seed / -minsup is built at startup; -snapshot warm-starts it.
//
//   - Catalog (-datasets dir/): every <name>.json in the directory
//     declares a dataset; engines build or snapshot-load lazily, at
//     most -max-engines stay resident. GET /api/datasets lists them.
//
//   - Cluster (internal/cluster): sessions shard across processes by
//     rendezvous-hashed session id, with replay-based migration when
//     the shard set changes.
//
//     Shard worker — a normal server (single-dataset or catalog
//     flags apply) that additionally exposes the cluster-internal
//     migration surface, for a private network behind a gateway:
//
//     vexus-server -shard -addr 127.0.0.1:7101 -n 2000
//
//     Gateway — owns routing and topology, holds no session state:
//
//     vexus-server -cluster gateway -shards 127.0.0.1:7101,127.0.0.1:7102
//
//     The gateway proxies the full public API sticky-by-sid (creation
//     picks the shard by hashing a gateway-minted sid), aggregates
//     /api/sessions and /api/datasets across shards without double
//     counting, reports shard health and residency on GET
//     /api/v1/cluster, and migrates sessions off a shard on POST
//     /api/v1/cluster/drain?shard= (POST /api/v1/cluster/join?shard=
//     &addr= adds one and rebalances). Every shard must serve a
//     bit-identical engine (same dataset flags/specs — the
//     core.Build/store.Load determinism contract); shard mode
//     therefore forces the deterministic optimizer configuration
//     (no wall-clock cutoff), so a replayed trail reproduces the
//     exported session byte for byte.
package main

import (
	"context"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"vexus/internal/cluster"
	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/greedy"
	"vexus/internal/membership"
	"vexus/internal/serve"
	"vexus/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		n         = flag.Int("n", 1000, "synthetic researcher count (single-dataset mode)")
		seed      = flag.Uint64("seed", 42, "generator seed (single-dataset mode)")
		minSup    = flag.Float64("minsup", 0.02, "minimum group support fraction (single-dataset mode)")
		workers   = flag.Int("workers", 0, "offline pipeline + snapshot-load workers (0 = NumCPU; any value builds bit-identical engines)")
		snap      = flag.String("snapshot", "", "engine snapshot file for warm starts (single-dataset mode): loaded when its content address matches the dataset + pipeline config, rebuilt and overwritten when stale")
		dir       = flag.String("datasets", "", "serve a dataset catalog: a directory of <name>.json specs with <name>.snap snapshots alongside (overrides single-dataset flags)")
		defName   = flag.String("default-dataset", "", "catalog dataset served when a request names none (default: lexicographically first)")
		maxEng    = flag.Int("max-engines", 8, "resident engine cap in catalog mode, 0 = unlimited (LRU eviction, session-free datasets first)")
		ttl       = flag.Duration("session-ttl", 30*time.Minute, "evict sessions idle longer than this (0 = never)")
		maxSess   = flag.Int("max-sessions", 4096, "live session cap per dataset, 0 = unlimited (idle-LRU eviction beyond it)")
		mode      = flag.String("cluster", "", `"gateway" routes sessions across the shards named by -shards`)
		shards    = flag.String("shards", "", "comma-separated shard addresses (host:port,...) for -cluster gateway")
		shard     = flag.Bool("shard", false, "run as a cluster shard worker: expose the /internal/cluster migration surface and use the deterministic optimizer config")
		secret    = flag.String("cluster-secret", os.Getenv("VEXUS_CLUSTER_SECRET"), "shared secret required on every /internal/cluster/* request (constant-time compare; default $VEXUS_CLUSTER_SECRET; empty disables the check)")
		routes    = flag.String("routes", "", "gateway: persist the membership route table (epoch + roster) to this file and reload it on restart")
		suspAft   = flag.Duration("suspect-after", 0, "gateway: mark a member suspect after this heartbeat silence (0 = 6s)")
		downAft   = flag.Duration("down-after", 0, "gateway: mark a member down — out of the routing set — after this heartbeat silence (0 = 20s)")
		announce  = flag.String("announce", "", "shard: gateway base URL (http://host:port) to heartbeat membership announcements to")
		beatEvery = flag.Duration("heartbeat", 2*time.Second, "shard: heartbeat interval for -announce")
		warmOnly  = flag.Bool("warm", false, "shard: do not build the engine; wait for a warm-join snapshot stream (single-dataset mode, requires -shard)")
		logLvl    = flag.String("log", "info", "log level: debug (includes per-request and migration spans), info, warn, error")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof/ (keep off on untrusted networks)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLvl)); err != nil {
		log.Fatalf("bad -log level %q: %v", *logLvl, err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	if *mode != "" {
		if *mode != "gateway" {
			log.Fatalf("unknown -cluster mode %q (only \"gateway\")", *mode)
		}
		addrs, err := cluster.ParseShards(*shards, *addr)
		if err != nil {
			log.Fatal(err)
		}
		members := make([]*cluster.Shard, 0, len(addrs))
		for _, a := range addrs {
			members = append(members, cluster.RemoteShard(a, a))
		}
		gw, err := cluster.NewGatewayConfig(cluster.GatewayConfig{
			Logger:       logger,
			Secret:       *secret,
			RoutesPath:   *routes,
			SuspectAfter: *suspAft,
			DownAfter:    *downAft,
		}, members...)
		if err != nil {
			log.Fatal(err)
		}
		logger.Info("VEXUS gateway listening", "addr", *addr, "shards", gw.Shards(),
			"epoch", gw.Epoch(), "routes", *routes, "auth", *secret != "")
		log.Fatal(http.ListenAndServe(*addr, withPprof(gw.Routes(), *pprofOn)))
	}

	scfg := serve.DefaultConfig()
	scfg.SessionTTL = *ttl
	scfg.MaxSessions = *maxSess
	scfg.ShardAPI = *shard
	scfg.ClusterSecret = *secret
	scfg.Logger = logger
	if *warmOnly && !*shard {
		log.Fatal("-warm requires -shard (a warm joiner is a cluster member)")
	}
	if *warmOnly && *dir != "" {
		log.Fatal("-warm supports single-dataset mode only (catalog engines already load lazily)")
	}
	if *announce != "" && !*shard {
		log.Fatal("-announce requires -shard (only cluster members heartbeat)")
	}

	gcfg := greedy.DefaultConfig()
	if *shard {
		// Replay-based migration re-runs the optimizer; only the
		// deterministic configuration makes the replayed session
		// byte-identical to the exported one.
		gcfg.TimeLimit = 0
	}

	var srv *serve.Server
	if *dir != "" {
		specs, err := serve.ScanCatalogDir(*dir)
		if err != nil {
			log.Fatal(err)
		}
		cat, err := serve.NewCatalog(*dir, specs, *defName, gcfg, scfg, *workers, *maxEng)
		if err != nil {
			log.Fatal(err)
		}
		srv = serve.NewCatalogServer(cat)
		logger.Info("catalog ready", "datasets", len(specs), "dir", *dir,
			"default", cat.DefaultName(), "maxResident", *maxEng)
	} else {
		data, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: *n, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		pcfg := core.DefaultPipelineConfig()
		pcfg.Encode = datagen.DBAuthorsEncodeOptions()
		pcfg.MinSupportFrac = *minSup
		pcfg.Workers = *workers
		if *warmOnly {
			// Warm joiner: the dataset and config are the fingerprint
			// roots the incoming snapshot stream must verify against, but
			// no engine is built — it arrives over POST
			// /internal/cluster/warm, and until then every session create
			// and readiness probe answers 503.
			srv = serve.NewPending("default", data, pcfg, gcfg, scfg)
			logger.Info("warm-only shard: engine deferred to warm-join snapshot stream",
				"users", data.NumUsers(), "minsup", *minSup)
		} else {
			start := time.Now()
			eng, warm, err := store.BuildOrLoad(*snap, data, pcfg)
			if eng == nil {
				log.Fatal(err)
			}
			if err != nil {
				logger.Warn("snapshot", "err", err)
			}
			if warm {
				logger.Info("warm start", "groups", eng.Space.Len(), "users", data.NumUsers(),
					"snapshot", *snap, "elapsed", time.Since(start).Round(time.Millisecond))
			} else {
				logger.Info("offline pipeline done", "groups", eng.Space.Len(), "users", data.NumUsers(),
					"mine", eng.Timings.Mine, "index", eng.Timings.Index)
			}
			srv = serve.New(eng, gcfg, scfg)
		}
	}

	if *announce != "" {
		gwURL := strings.TrimSuffix(*announce, "/")
		if !strings.Contains(gwURL, "://") {
			gwURL = "http://" + gwURL
		}
		ann := &membership.Announcer{
			// The name is the rendezvous identity: it must match the
			// address the gateway admitted this shard under (-shards
			// entry or join ?addr=), so announce with the same -addr.
			Self:     membership.Member{Name: *addr, Addr: *addr},
			Gateways: []string{gwURL},
			Secret:   *secret,
			Every:    *beatEvery,
			Info:     srv.LoadInfo,
			RTT: srv.Telemetry().Histogram("vexus_cluster_heartbeat_rtt_seconds",
				"Membership heartbeat round-trip time to the gateway.", nil),
			Logger: logger,
		}
		go ann.Run(context.Background())
		logger.Info("membership announcer running", "gateway", gwURL, "every", *beatEvery, "member", *addr)
	}

	role := "VEXUS"
	if *shard {
		role = "VEXUS shard"
	}
	logger.Info(role+" listening", "addr", *addr, "sessionTTL", *ttl, "maxSessions", *maxSess, "pprof", *pprofOn)
	err := http.ListenAndServe(*addr, withPprof(srv.Routes(), *pprofOn))
	srv.Close()
	log.Fatal(err)
}

// withPprof mounts the net/http/pprof handlers beside the API when
// enabled. The handlers are registered explicitly on our own mux —
// importing the package for its DefaultServeMux side effect would
// expose the profiler unconditionally, which is exactly what the flag
// exists to prevent.
func withPprof(h http.Handler, enabled bool) http.Handler {
	if !enabled {
		return h
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	mux.Handle("/", h)
	return mux
}
