// vexus-server exposes multi-session exploration over HTTP: a JSON API
// plus a self-contained HTML page that renders the five modules of
// Fig. 2 — GROUPVIZ (server-rendered force-layout SVG), CONTEXT,
// STATS histograms with brushing, HISTORY with backtrack, and MEMO.
// Idle sessions expire after -session-ttl; at -max-sessions the
// least-recently-used one is evicted. Everything is standard library;
// the page uses no external assets.
//
// # The v1 action API
//
// /api/v1 is the typed exploration-action API (internal/action), the
// surface new clients should target:
//
//	POST   /api/v1/sessions?dataset=           → 201, full state + ETag
//	DELETE /api/v1/sessions/{sid}              → 204
//	GET    /api/v1/sessions/{sid}/state        → full state; If-None-Match honored (304)
//	GET    /api/v1/state?sid=                  → same, legacy address shape
//	POST   /api/v1/sessions/{sid}/actions      → apply an action batch
//
// The actions body is a JSON array of typed actions ({"op":"explore",
// "group":3}, {"op":"brush","attr":"gender","values":["female"]}, …;
// vocabulary in internal/action). Decoding is strict: unknown fields,
// unknown ops and operands that do not belong to an op are rejected.
// Batches apply in order under the session lock and stop at the first
// failure; the response reports, per applied action, the optimizer
// metrics (explore) and a state *diff* — shown groups added/removed,
// focal change, CONTEXT/MEMO deltas, and the session's mutation
// counter:
//
//	{"session":"…","etag":"…","applied":2,"results":[
//	  {"metrics":{…},"diff":{"op":"explore","shownAdded":[…],
//	   "shownRemoved":[…],"focalChanged":true,"focal":3,
//	   "historySteps":2,"contextAdded":[…],"mutations":2}}, …]}
//
// On a mid-batch failure the status is 400 and the body carries
// "failedIndex" plus the results of the applied prefix (batches are
// sequences, not transactions). With ?full=1 a successful batch
// returns the full state snapshot instead of diffs. The ETag header
// always reflects the state after the applied prefix, and equals
// `"<sid>.<mutations>"` — a client consuming diffs can therefore
// revalidate GET /api/v1/sessions/{sid}/state without refetching.
//
// The legacy /api/* mutation endpoints (explore, backtrack, focus,
// brush, unlearn, bookmark) remain as thin shims that build exactly
// one action and delegate to the same dispatcher — they are
// behavior-pinned by equivalence tests but deprecated: new clients
// should POST action batches, and the shims will be removed once the
// bundled page migrates. Session creation via POST /api/session
// (200) is the legacy twin of POST /api/v1/sessions (201).
//
// Two deployment shapes:
//
//   - Single dataset (default): the synthetic dataset named by -n /
//     -seed / -minsup is built at startup. With -snapshot, the engine
//     warm-starts from that file when its content address (hash of
//     dataset + pipeline config) matches, and is rebuilt — and the
//     snapshot rewritten — when it does not.
//   - Catalog (-datasets dir/): every <name>.json in the directory
//     declares a dataset; engines build or snapshot-load (from
//     <name>.snap alongside) lazily on the first request naming them,
//     concurrent first requests share one build, and at most
//     -max-engines engines stay resident (LRU eviction, idle datasets
//     first). GET /api/datasets lists the catalog.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/greedy"
	"vexus/internal/store"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		n       = flag.Int("n", 1000, "synthetic researcher count (single-dataset mode)")
		seed    = flag.Uint64("seed", 42, "generator seed (single-dataset mode)")
		minSup  = flag.Float64("minsup", 0.02, "minimum group support fraction (single-dataset mode)")
		workers = flag.Int("workers", 0, "offline pipeline + snapshot-load workers (0 = NumCPU; any value builds bit-identical engines)")
		snap    = flag.String("snapshot", "", "engine snapshot file for warm starts (single-dataset mode): loaded when its content address matches the dataset + pipeline config, rebuilt and overwritten when stale")
		dir     = flag.String("datasets", "", "serve a dataset catalog: a directory of <name>.json specs with <name>.snap snapshots alongside (overrides single-dataset flags)")
		defName = flag.String("default-dataset", "", "catalog dataset served when a request names none (default: lexicographically first)")
		maxEng  = flag.Int("max-engines", 8, "resident engine cap in catalog mode, 0 = unlimited (LRU eviction, session-free datasets first)")
		ttl     = flag.Duration("session-ttl", 30*time.Minute, "evict sessions idle longer than this (0 = never)")
		maxSess = flag.Int("max-sessions", 4096, "live session cap per dataset, 0 = unlimited (idle-LRU eviction beyond it)")
	)
	flag.Parse()

	scfg := defaultServerConfig()
	scfg.SessionTTL = *ttl
	scfg.MaxSessions = *maxSess

	var srv *server
	if *dir != "" {
		specs, err := scanCatalogDir(*dir)
		if err != nil {
			log.Fatal(err)
		}
		cat, err := newCatalog(*dir, specs, *defName, greedy.DefaultConfig(), scfg, *workers, *maxEng)
		if err != nil {
			log.Fatal(err)
		}
		srv = newCatalogServer(cat)
		log.Printf("catalog: %d datasets in %s (default %q, ≤%d resident)",
			len(specs), *dir, cat.defaultName, *maxEng)
	} else {
		data, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: *n, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		pcfg := core.DefaultPipelineConfig()
		pcfg.Encode = datagen.DBAuthorsEncodeOptions()
		pcfg.MinSupportFrac = *minSup
		pcfg.Workers = *workers
		start := time.Now()
		eng, warm, err := store.BuildOrLoad(*snap, data, pcfg)
		if eng == nil {
			log.Fatal(err)
		}
		if err != nil {
			log.Printf("warning: %v", err)
		}
		if warm {
			log.Printf("warm start: %d groups over %d users loaded from %s in %v",
				eng.Space.Len(), data.NumUsers(), *snap, time.Since(start).Round(time.Millisecond))
		} else {
			log.Printf("offline pipeline: %d groups over %d users (mine %v, index %v)",
				eng.Space.Len(), data.NumUsers(), eng.Timings.Mine, eng.Timings.Index)
		}
		srv = newServer(eng, greedy.DefaultConfig(), scfg)
	}

	log.Printf("VEXUS listening on http://%s (session ttl %v, max %d)", *addr, *ttl, *maxSess)
	err := http.ListenAndServe(*addr, srv.routes())
	srv.close()
	log.Fatal(err)
}
