// vexus-server exposes multi-session exploration over HTTP: a JSON API
// plus a self-contained HTML page that renders the five modules of
// Fig. 2 — GROUPVIZ (server-rendered force-layout SVG), CONTEXT,
// STATS histograms with brushing, HISTORY with backtrack, and MEMO.
// POST /api/session creates an isolated exploration session over the
// shared immutable engine; every other endpoint addresses one via its
// `sid` parameter, so any number of explorers run concurrently without
// serializing on each other. Idle sessions expire after -session-ttl;
// at -max-sessions the least-recently-used one is evicted. Everything
// is standard library; the page uses no external assets.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/greedy"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		n       = flag.Int("n", 1000, "synthetic researcher count")
		seed    = flag.Uint64("seed", 42, "generator seed")
		minSup  = flag.Float64("minsup", 0.02, "minimum group support fraction")
		workers = flag.Int("workers", 0, "offline pipeline workers (0 = NumCPU)")
		ttl     = flag.Duration("session-ttl", 30*time.Minute, "evict sessions idle longer than this (0 = never)")
		maxSess = flag.Int("max-sessions", 4096, "live session cap, 0 = unlimited (idle-LRU eviction beyond it)")
	)
	flag.Parse()

	data, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: *n, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	pcfg := core.DefaultPipelineConfig()
	pcfg.Encode = datagen.DBAuthorsEncodeOptions()
	pcfg.MinSupportFrac = *minSup
	pcfg.Workers = *workers
	eng, err := core.Build(data, pcfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("offline pipeline: %d groups over %d users (mine %v, index %v)",
		eng.Space.Len(), data.NumUsers(), eng.Timings.Mine, eng.Timings.Index)

	scfg := defaultServerConfig()
	scfg.SessionTTL = *ttl
	scfg.MaxSessions = *maxSess
	srv := newServer(eng, greedy.DefaultConfig(), scfg)
	log.Printf("VEXUS listening on http://%s (session ttl %v, max %d)", *addr, *ttl, *maxSess)
	err = http.ListenAndServe(*addr, srv.routes())
	srv.close()
	log.Fatal(err)
}
