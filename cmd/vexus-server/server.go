package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"vexus/internal/core"
	"vexus/internal/greedy"
	"vexus/internal/viz"
)

// server multiplexes many concurrent explorers over a catalog of
// immutable engines: every client owns an isolated core.Session
// (created via POST /api/session, optionally scoped to a named dataset
// with ?dataset=) addressed by the `sid` parameter on every other
// endpoint. Sessions lock individually, so explorers never serialize
// on each other — only on their own in-flight request — and datasets
// build or snapshot-load lazily on first use.
type server struct {
	cat *catalog
}

// serverConfig bounds the session registry.
type serverConfig struct {
	// SessionTTL evicts sessions idle longer than this (0 disables).
	SessionTTL time.Duration
	// MaxSessions caps live sessions (0 = unlimited); at capacity the
	// least-recently-used idle session is evicted to admit a new
	// explorer, and creation fails with 503 when none is idle.
	MaxSessions int
	// SweepInterval is how often the TTL sweeper runs (0 = TTL/4).
	SweepInterval time.Duration
}

func defaultServerConfig() serverConfig {
	return serverConfig{
		SessionTTL:  30 * time.Minute,
		MaxSessions: 4096,
	}
}

// newServer wraps a single pre-built engine — the classic one-dataset
// deployment, also the shape every existing test drives.
func newServer(eng *core.Engine, cfg greedy.Config, scfg serverConfig) *server {
	return &server{cat: newSingleEngineCatalog("default", eng, cfg, scfg)}
}

// newCatalogServer serves a whole dataset catalog, engines built or
// snapshot-loaded on first request.
func newCatalogServer(cat *catalog) *server {
	return &server{cat: cat}
}

// close releases every resident registry's sweeper.
func (s *server) close() { s.cat.close() }

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleIndex)
	mux.HandleFunc("POST /api/session", s.handleSessionCreate)
	mux.HandleFunc("DELETE /api/session", s.handleSessionDelete)
	mux.HandleFunc("GET /api/sessions", s.handleSessions)
	mux.HandleFunc("GET /api/datasets", s.handleDatasets)
	mux.HandleFunc("GET /api/state", s.handleState)
	mux.HandleFunc("POST /api/explore", s.handleExplore)
	mux.HandleFunc("POST /api/backtrack", s.handleBacktrack)
	mux.HandleFunc("POST /api/focus", s.handleFocus)
	mux.HandleFunc("POST /api/brush", s.handleBrush)
	mux.HandleFunc("POST /api/unlearn", s.handleUnlearn)
	mux.HandleFunc("POST /api/bookmark", s.handleBookmark)
	mux.HandleFunc("GET /api/groupviz.svg", s.handleGroupVizSVG)
	mux.HandleFunc("GET /api/focus.svg", s.handleFocusSVG)
	return mux
}

// session resolves the sid parameter to a live session (whatever
// dataset it belongs to), writing the 4xx itself when it can't: 400
// for a missing id, 404 for an unknown or expired one.
func (s *server) session(w http.ResponseWriter, r *http.Request) (*clientSession, bool) {
	sid := r.FormValue("sid")
	if sid == "" {
		http.Error(w, "missing session id (create one with POST /api/session)", http.StatusBadRequest)
		return nil, false
	}
	cs, ok := s.cat.findSession(sid)
	if !ok {
		http.Error(w, "unknown or expired session "+sid, http.StatusNotFound)
		return nil, false
	}
	return cs, true
}

// stateDTO is the full UI state pushed to the page after every action.
type stateDTO struct {
	Session string       `json:"session"`
	Dataset string       `json:"dataset,omitempty"`
	Shown   []groupDTO   `json:"shown"`
	Focal   int          `json:"focal"`
	Context []contextDTO `json:"context"`
	History []historyDTO `json:"history"`
	Memo    memoDTO      `json:"memo"`
	Focus   *focusDTO    `json:"focus,omitempty"`
}

type groupDTO struct {
	ID         int     `json:"id"`
	Label      string  `json:"label"`
	Size       int     `json:"size"`
	Similarity float64 `json:"similarity"`
}

type contextDTO struct {
	Label  string  `json:"label"`
	Score  float64 `json:"score"`
	IsUser bool    `json:"isUser"`
}

type historyDTO struct {
	Step  int    `json:"step"`
	Label string `json:"label"`
}

type memoDTO struct {
	Groups []string `json:"groups"`
	Users  []string `json:"users"`
}

type focusDTO struct {
	GroupID    int            `json:"groupId"`
	Label      string         `json:"label"`
	Members    int            `json:"members"`
	Selected   int            `json:"selected"`
	Histograms []histogramDTO `json:"histograms"`
	Table      []tableRowDTO  `json:"table"`
}

type histogramDTO struct {
	Attr   string   `json:"attr"`
	Labels []string `json:"labels"`
	Counts []int    `json:"counts"`
}

type tableRowDTO struct {
	ID     string   `json:"id"`
	Acts   int      `json:"acts"`
	Demo   []string `json:"demo"`
	Marked bool     `json:"marked"`
}

// state assembles the DTO; the caller must hold cs.mu. Everything
// renders through the session's own engine, so sessions over different
// catalog datasets coexist behind one mux.
func (s *server) state(cs *clientSession) stateDTO {
	eng := cs.eng
	st := stateDTO{Session: cs.id, Dataset: cs.dataset, Focal: cs.sess.Focal()}
	focal := cs.sess.Focal()
	for _, v := range cs.sess.Views("") {
		sim := 0.0
		if focal >= 0 {
			sim = eng.Space.Group(focal).Jaccard(eng.Space.Group(v.ID))
		}
		st.Shown = append(st.Shown, groupDTO{
			ID: v.ID, Label: v.Label, Size: v.Size, Similarity: sim,
		})
	}
	for _, e := range cs.sess.Context(8) {
		st.Context = append(st.Context, contextDTO{Label: e.Label, Score: e.Score, IsUser: e.IsUser})
	}
	for i, step := range cs.sess.History() {
		label := "start"
		if step.Focal >= 0 {
			label = eng.GroupLabel(step.Focal)
		}
		st.History = append(st.History, historyDTO{Step: i, Label: label})
	}
	m := cs.sess.Memo()
	for _, gid := range m.Groups() {
		st.Memo.Groups = append(st.Memo.Groups, eng.GroupLabel(gid))
	}
	for _, u := range m.Users() {
		st.Memo.Users = append(st.Memo.Users, eng.Data.Users[u].ID)
	}
	if cs.focus != nil {
		fd := &focusDTO{
			GroupID:  cs.focus.GroupID,
			Label:    eng.GroupLabel(cs.focus.GroupID),
			Members:  len(cs.focus.Members),
			Selected: cs.focus.SelectedCount(),
		}
		for _, attr := range cs.focus.Attributes() {
			labels, counts, err := cs.focus.Histogram(attr)
			if err != nil {
				continue
			}
			fd.Histograms = append(fd.Histograms, histogramDTO{Attr: attr, Labels: labels, Counts: counts})
		}
		for _, row := range cs.focus.Table(12) {
			fd.Table = append(fd.Table, tableRowDTO{
				ID: row.ID, Acts: row.NumAct, Demo: row.Demo,
				Marked: m.HasUser(row.User),
			})
		}
		st.Focus = fd
	}
	return st
}

// writeState renders the session's state with its ETag (derived from
// the session's mutation counter); the caller must hold cs.mu.
func (s *server) writeState(w http.ResponseWriter, cs *clientSession) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", cs.etag())
	_ = json.NewEncoder(w).Encode(s.state(cs))
}

func (s *server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	cs, err := s.cat.createSession(r.FormValue("dataset"))
	if err != nil {
		switch {
		case errors.Is(err, errUnknownDataset):
			http.Error(w, err.Error(), http.StatusNotFound)
		case errors.Is(err, errServerFull):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	s.writeState(w, cs)
}

func (s *server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	cs, ok := s.session(w, r)
	if !ok {
		return
	}
	s.cat.removeSession(cs.id)
	w.WriteHeader(http.StatusNoContent)
}

// handleSessions reports registry occupancy — the ops view of a
// multi-explorer deployment — total and per dataset.
func (s *server) handleSessions(w http.ResponseWriter, _ *http.Request) {
	total, per := s.cat.sessionCount()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Sessions   int            `json:"sessions"`
		PerDataset map[string]int `json:"perDataset"`
	}{total, per})
}

// handleDatasets lists the catalog: every known dataset, whether its
// engine is resident, whether the last start was warm, and its live
// session count.
func (s *server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Default  string          `json:"default"`
		Datasets []datasetStatus `json:"datasets"`
	}{s.cat.defaultName, s.cat.status()})
}

func (s *server) handleState(w http.ResponseWriter, r *http.Request) {
	cs, ok := s.session(w, r)
	if !ok {
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if etag := cs.etag(); etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	s.writeState(w, cs)
}

// etagMatches implements the If-None-Match comparison: a "*" or any
// listed validator equal to the current one means the client's cached
// state is still fresh.
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

func (s *server) handleExplore(w http.ResponseWriter, r *http.Request) {
	gid, err := strconv.Atoi(r.FormValue("g"))
	if err != nil {
		http.Error(w, "bad group id", http.StatusBadRequest)
		return
	}
	cs, ok := s.session(w, r)
	if !ok {
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if _, err := cs.sess.Explore(gid); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cs.focus = nil
	cs.bump()
	s.writeState(w, cs)
}

func (s *server) handleBacktrack(w http.ResponseWriter, r *http.Request) {
	step, err := strconv.Atoi(r.FormValue("step"))
	if err != nil {
		http.Error(w, "bad step", http.StatusBadRequest)
		return
	}
	cs, ok := s.session(w, r)
	if !ok {
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if err := cs.sess.Backtrack(step); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cs.focus = nil
	cs.bump()
	s.writeState(w, cs)
}

func (s *server) handleFocus(w http.ResponseWriter, r *http.Request) {
	gid, err := strconv.Atoi(r.FormValue("g"))
	if err != nil {
		http.Error(w, "bad group id", http.StatusBadRequest)
		return
	}
	cs, ok := s.session(w, r)
	if !ok {
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	fv, err := cs.sess.Focus(gid, r.FormValue("class"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cs.focus = fv
	cs.bump()
	s.writeState(w, cs)
}

func (s *server) handleBrush(w http.ResponseWriter, r *http.Request) {
	cs, ok := s.session(w, r)
	if !ok {
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.focus == nil {
		http.Error(w, "no focused group", http.StatusBadRequest)
		return
	}
	attr := r.FormValue("attr")
	value := r.FormValue("value")
	var err error
	if value == "" {
		err = cs.focus.ClearBrush(attr)
	} else {
		err = cs.focus.Brush(attr, value)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cs.bump()
	s.writeState(w, cs)
}

func (s *server) handleUnlearn(w http.ResponseWriter, r *http.Request) {
	cs, ok := s.session(w, r)
	if !ok {
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if err := cs.sess.Unlearn(r.FormValue("field"), r.FormValue("value")); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cs.bump()
	s.writeState(w, cs)
}

func (s *server) handleBookmark(w http.ResponseWriter, r *http.Request) {
	cs, ok := s.session(w, r)
	if !ok {
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	var err error
	if g := r.FormValue("g"); g != "" {
		var gid int
		if gid, err = strconv.Atoi(g); err == nil {
			err = cs.sess.BookmarkGroup(gid)
		}
	} else if u := r.FormValue("user"); u != "" {
		idx := cs.eng.Data.UserIndex(u)
		if idx < 0 {
			http.Error(w, "unknown user", http.StatusBadRequest)
			return
		}
		err = cs.sess.BookmarkUser(idx)
	} else {
		http.Error(w, "nothing to bookmark: pass g or user", http.StatusBadRequest)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cs.bump()
	s.writeState(w, cs)
}

func (s *server) handleGroupVizSVG(w http.ResponseWriter, r *http.Request) {
	cs, ok := s.session(w, r)
	if !ok {
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	colorAttr := r.URL.Query().Get("color")
	if colorAttr == "" {
		colorAttr = cs.eng.Data.Schema.Attrs[0].Name
	}
	views := cs.sess.Views(colorAttr)
	maxSize := 1
	for _, v := range views {
		if v.Size > maxSize {
			maxSize = v.Size
		}
	}
	nodes := make([]viz.Node, len(views))
	for i, v := range views {
		nodes[i] = viz.Node{ID: v.ID, Radius: viz.RadiusForSize(v.Size, maxSize)}
	}
	var edges []viz.Edge
	for i := range views {
		for j := i + 1; j < len(views); j++ {
			sim := cs.eng.Space.Group(views[i].ID).Jaccard(cs.eng.Space.Group(views[j].ID))
			if sim > 0 {
				edges = append(edges, viz.Edge{A: i, B: j, Strength: sim})
			}
		}
	}
	placed := viz.Layout(nodes, edges, viz.DefaultLayoutConfig())
	circles := make([]viz.Circle, len(placed))
	for i, nd := range placed {
		circles[i] = viz.Circle{
			X: nd.X, Y: nd.Y, R: nd.Radius,
			Label:     views[i].Label,
			Title:     strconv.Itoa(views[i].Size),
			Shares:    views[i].ColorShares,
			Highlight: views[i].ID == cs.sess.Focal(),
		}
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write([]byte(viz.GroupVizSVG(circles, 720, 480)))
}

func (s *server) handleFocusSVG(w http.ResponseWriter, r *http.Request) {
	cs, ok := s.session(w, r)
	if !ok {
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.focus == nil || cs.focus.Projection == nil {
		http.Error(w, "no focused projection", http.StatusNotFound)
		return
	}
	classIdx := cs.eng.Data.Schema.AttrIndex(cs.focus.ClassAttr)
	points := make([]viz.ScatterPoint, len(cs.focus.Projection.Points))
	for i, p := range cs.focus.Projection.Points {
		u := cs.focus.Members[i]
		cls := -1
		if classIdx >= 0 {
			cls = cs.eng.Data.Users[u].Demo[classIdx]
		}
		points[i] = viz.ScatterPoint{X: p[0], Y: p[1], Class: cls, Label: cs.eng.Data.Users[u].ID}
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write([]byte(viz.ScatterSVG(points, 420, 320)))
}
