package main

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"

	"vexus/internal/core"
	"vexus/internal/greedy"
	"vexus/internal/viz"
)

// server wraps one exploration session behind a mutex: the demo serves
// a single explorer, as the paper's demo station does.
type server struct {
	mu    sync.Mutex
	eng   *core.Engine
	sess  *core.Session
	focus *core.FocusView
}

func newServer(eng *core.Engine, cfg greedy.Config) *server {
	s := &server{eng: eng, sess: eng.NewSession(cfg)}
	s.sess.Start()
	return s
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleIndex)
	mux.HandleFunc("GET /api/state", s.handleState)
	mux.HandleFunc("POST /api/explore", s.handleExplore)
	mux.HandleFunc("POST /api/backtrack", s.handleBacktrack)
	mux.HandleFunc("POST /api/focus", s.handleFocus)
	mux.HandleFunc("POST /api/brush", s.handleBrush)
	mux.HandleFunc("POST /api/unlearn", s.handleUnlearn)
	mux.HandleFunc("POST /api/bookmark", s.handleBookmark)
	mux.HandleFunc("GET /api/groupviz.svg", s.handleGroupVizSVG)
	mux.HandleFunc("GET /api/focus.svg", s.handleFocusSVG)
	return mux
}

// stateDTO is the full UI state pushed to the page after every action.
type stateDTO struct {
	Shown   []groupDTO   `json:"shown"`
	Focal   int          `json:"focal"`
	Context []contextDTO `json:"context"`
	History []historyDTO `json:"history"`
	Memo    memoDTO      `json:"memo"`
	Focus   *focusDTO    `json:"focus,omitempty"`
}

type groupDTO struct {
	ID         int     `json:"id"`
	Label      string  `json:"label"`
	Size       int     `json:"size"`
	Similarity float64 `json:"similarity"`
}

type contextDTO struct {
	Label  string  `json:"label"`
	Score  float64 `json:"score"`
	IsUser bool    `json:"isUser"`
}

type historyDTO struct {
	Step  int    `json:"step"`
	Label string `json:"label"`
}

type memoDTO struct {
	Groups []string `json:"groups"`
	Users  []string `json:"users"`
}

type focusDTO struct {
	GroupID    int            `json:"groupId"`
	Label      string         `json:"label"`
	Members    int            `json:"members"`
	Selected   int            `json:"selected"`
	Histograms []histogramDTO `json:"histograms"`
	Table      []tableRowDTO  `json:"table"`
}

type histogramDTO struct {
	Attr   string   `json:"attr"`
	Labels []string `json:"labels"`
	Counts []int    `json:"counts"`
}

type tableRowDTO struct {
	ID     string   `json:"id"`
	Acts   int      `json:"acts"`
	Demo   []string `json:"demo"`
	Marked bool     `json:"marked"`
}

// state assembles the DTO; the caller must hold s.mu.
func (s *server) state() stateDTO {
	st := stateDTO{Focal: s.sess.Focal()}
	focal := s.sess.Focal()
	for _, v := range s.sess.Views("") {
		sim := 0.0
		if focal >= 0 {
			sim = s.eng.Space.Group(focal).Jaccard(s.eng.Space.Group(v.ID))
		}
		st.Shown = append(st.Shown, groupDTO{
			ID: v.ID, Label: v.Label, Size: v.Size, Similarity: sim,
		})
	}
	for _, e := range s.sess.Context(8) {
		st.Context = append(st.Context, contextDTO{Label: e.Label, Score: e.Score, IsUser: e.IsUser})
	}
	for i, step := range s.sess.History() {
		label := "start"
		if step.Focal >= 0 {
			label = s.eng.GroupLabel(step.Focal)
		}
		st.History = append(st.History, historyDTO{Step: i, Label: label})
	}
	m := s.sess.Memo()
	for _, gid := range m.Groups() {
		st.Memo.Groups = append(st.Memo.Groups, s.eng.GroupLabel(gid))
	}
	for _, u := range m.Users() {
		st.Memo.Users = append(st.Memo.Users, s.eng.Data.Users[u].ID)
	}
	if s.focus != nil {
		fd := &focusDTO{
			GroupID:  s.focus.GroupID,
			Label:    s.eng.GroupLabel(s.focus.GroupID),
			Members:  len(s.focus.Members),
			Selected: s.focus.SelectedCount(),
		}
		for _, attr := range s.focus.Attributes() {
			labels, counts, err := s.focus.Histogram(attr)
			if err != nil {
				continue
			}
			fd.Histograms = append(fd.Histograms, histogramDTO{Attr: attr, Labels: labels, Counts: counts})
		}
		for _, row := range s.focus.Table(12) {
			fd.Table = append(fd.Table, tableRowDTO{
				ID: row.ID, Acts: row.NumAct, Demo: row.Demo,
				Marked: m.HasUser(row.User),
			})
		}
		st.Focus = fd
	}
	return st
}

func (s *server) writeState(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.state())
}

func (s *server) handleState(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeState(w)
}

func (s *server) handleExplore(w http.ResponseWriter, r *http.Request) {
	gid, err := strconv.Atoi(r.FormValue("g"))
	if err != nil {
		http.Error(w, "bad group id", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.sess.Explore(gid); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.focus = nil
	s.writeState(w)
}

func (s *server) handleBacktrack(w http.ResponseWriter, r *http.Request) {
	step, err := strconv.Atoi(r.FormValue("step"))
	if err != nil {
		http.Error(w, "bad step", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sess.Backtrack(step); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.focus = nil
	s.writeState(w)
}

func (s *server) handleFocus(w http.ResponseWriter, r *http.Request) {
	gid, err := strconv.Atoi(r.FormValue("g"))
	if err != nil {
		http.Error(w, "bad group id", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fv, err := s.sess.Focus(gid, r.FormValue("class"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.focus = fv
	s.writeState(w)
}

func (s *server) handleBrush(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.focus == nil {
		http.Error(w, "no focused group", http.StatusBadRequest)
		return
	}
	attr := r.FormValue("attr")
	value := r.FormValue("value")
	var err error
	if value == "" {
		err = s.focus.ClearBrush(attr)
	} else {
		err = s.focus.Brush(attr, value)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.writeState(w)
}

func (s *server) handleUnlearn(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sess.Unlearn(r.FormValue("field"), r.FormValue("value")); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.writeState(w)
}

func (s *server) handleBookmark(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if g := r.FormValue("g"); g != "" {
		var gid int
		if gid, err = strconv.Atoi(g); err == nil {
			err = s.sess.BookmarkGroup(gid)
		}
	} else if u := r.FormValue("user"); u != "" {
		idx := s.eng.Data.UserIndex(u)
		if idx < 0 {
			http.Error(w, "unknown user", http.StatusBadRequest)
			return
		}
		err = s.sess.BookmarkUser(idx)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.writeState(w)
}

func (s *server) handleGroupVizSVG(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	colorAttr := r.URL.Query().Get("color")
	if colorAttr == "" {
		colorAttr = s.eng.Data.Schema.Attrs[0].Name
	}
	views := s.sess.Views(colorAttr)
	maxSize := 1
	for _, v := range views {
		if v.Size > maxSize {
			maxSize = v.Size
		}
	}
	nodes := make([]viz.Node, len(views))
	for i, v := range views {
		nodes[i] = viz.Node{ID: v.ID, Radius: viz.RadiusForSize(v.Size, maxSize)}
	}
	var edges []viz.Edge
	for i := range views {
		for j := i + 1; j < len(views); j++ {
			sim := s.eng.Space.Group(views[i].ID).Jaccard(s.eng.Space.Group(views[j].ID))
			if sim > 0 {
				edges = append(edges, viz.Edge{A: i, B: j, Strength: sim})
			}
		}
	}
	placed := viz.Layout(nodes, edges, viz.DefaultLayoutConfig())
	circles := make([]viz.Circle, len(placed))
	for i, nd := range placed {
		circles[i] = viz.Circle{
			X: nd.X, Y: nd.Y, R: nd.Radius,
			Label:     views[i].Label,
			Title:     strconv.Itoa(views[i].Size),
			Shares:    views[i].ColorShares,
			Highlight: views[i].ID == s.sess.Focal(),
		}
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write([]byte(viz.GroupVizSVG(circles, 720, 480)))
}

func (s *server) handleFocusSVG(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.focus == nil || s.focus.Projection == nil {
		http.Error(w, "no focused projection", http.StatusNotFound)
		return
	}
	classIdx := s.eng.Data.Schema.AttrIndex(s.focus.ClassAttr)
	points := make([]viz.ScatterPoint, len(s.focus.Projection.Points))
	for i, p := range s.focus.Projection.Points {
		u := s.focus.Members[i]
		cls := -1
		if classIdx >= 0 {
			cls = s.eng.Data.Users[u].Demo[classIdx]
		}
		points[i] = viz.ScatterPoint{X: p[0], Y: p[1], Class: cls, Label: s.eng.Data.Users[u].ID}
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write([]byte(viz.ScatterSVG(points, 420, 320)))
}
