// Quickstart: generate a small researcher dataset, run the VEXUS
// offline pipeline (encode → mine groups → build the similarity
// index), then take three interactive exploration steps and print what
// an explorer would see.
package main

import (
	"fmt"
	"log"

	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/greedy"
)

func main() {
	// 1. User data: 1,000 synthetic database researchers.
	data, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 1000, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d users, %d items, %d actions\n",
		data.NumUsers(), data.NumItems(), data.NumActions())

	// 2. Offline pipeline (Fig. 1): groups + inverted similarity index.
	cfg := core.DefaultPipelineConfig()
	cfg.Encode = datagen.DBAuthorsEncodeOptions()
	eng, err := core.Build(data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats := eng.Space.ComputeStats()
	fmt.Printf("pipeline: %d groups (mean size %.1f) in %v mining + %v indexing\n\n",
		stats.NumGroups, stats.MeanSize, eng.Timings.Mine.Round(1e6), eng.Timings.Index.Round(1e6))

	// 3. Explore: start, then follow the biggest group twice.
	sess := eng.NewSession(greedy.DefaultConfig())
	shown := sess.Start()
	fmt.Println("initial GROUPVIZ (k largest groups):")
	printShown(eng, shown)

	for step := 1; step <= 3; step++ {
		pick := sess.Shown()[0]
		sel, err := sess.Explore(pick)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nstep %d: clicked %q\n", step, eng.GroupLabel(pick))
		fmt.Printf("  optimizer: coverage %.2f, diversity %.2f in %v (%d candidates)\n",
			sel.Coverage, sel.Diversity, sel.Elapsed.Round(1e5), sel.Candidates)
		printShown(eng, sel.IDs)
	}

	// 4. The CONTEXT module shows what VEXUS has learned.
	fmt.Println("\nCONTEXT (learned feedback):")
	for _, e := range sess.Context(5) {
		fmt.Printf("  %-40s %.3f\n", e.Label, e.Score)
	}
}

func printShown(eng *core.Engine, ids []int) {
	for _, gid := range ids {
		g := eng.Space.Group(gid)
		fmt.Printf("  [%4d users] %s\n", g.Size(), eng.GroupLabel(gid))
	}
}
