// Focusview regenerates the visual panels of Fig. 2 as SVG files: the
// GROUPVIZ force layout with size/color-coded circles (groupviz.svg),
// a STATS histogram with a brush (stats.svg), the LDA Focus-view
// scatter (focus.svg) and the HISTORY trail (history.svg). It also
// exercises the §II-B granular-analysis anecdote: focus on a group,
// brush gender=female and extreme activity, and print the resulting
// member table.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/greedy"
	"vexus/internal/viz"
)

func main() {
	data, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 500, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultPipelineConfig()
	cfg.Encode = datagen.DBAuthorsEncodeOptions()
	cfg.MinSupportFrac = 0.03
	eng, err := core.Build(data, cfg)
	if err != nil {
		log.Fatal(err)
	}

	sess := eng.NewSession(greedy.DefaultConfig())
	sess.Start()
	// Focus on a mixed-gender group (one whose description does not
	// pin gender), so the gender brush below has members on both sides.
	pick := sess.Shown()[0]
	for _, gid := range sess.Shown() {
		if !strings.Contains(eng.GroupLabel(gid), "gender=") {
			pick = gid
			break
		}
	}
	if _, err := sess.Explore(pick); err != nil {
		log.Fatal(err)
	}

	// --- GROUPVIZ: force layout + pies colored by gender. -----------
	views := sess.Views("gender")
	maxSize := 0
	for _, v := range views {
		if v.Size > maxSize {
			maxSize = v.Size
		}
	}
	nodes := make([]viz.Node, len(views))
	for i, v := range views {
		nodes[i] = viz.Node{ID: v.ID, Radius: viz.RadiusForSize(v.Size, maxSize)}
	}
	var edges []viz.Edge
	for i := range views {
		for j := i + 1; j < len(views); j++ {
			sim := eng.Space.Group(views[i].ID).Jaccard(eng.Space.Group(views[j].ID))
			if sim > 0 {
				edges = append(edges, viz.Edge{A: i, B: j, Strength: sim})
			}
		}
	}
	placed := viz.Layout(nodes, edges, viz.DefaultLayoutConfig())
	circles := make([]viz.Circle, len(placed))
	for i, n := range placed {
		circles[i] = viz.Circle{
			X: n.X, Y: n.Y, R: n.Radius,
			Label:  views[i].Label,
			Title:  fmt.Sprintf("%d", views[i].Size),
			Shares: views[i].ColorShares,
		}
	}
	write("groupviz.svg", viz.GroupVizSVG(circles, 720, 480))

	// --- STATS + Focus view on the focal group. ----------------------
	fv, err := sess.Focus(pick, "topic")
	if err != nil {
		log.Fatal(err)
	}
	if err := fv.Brush("gender", "female"); err != nil {
		log.Fatal(err)
	}
	labels, counts, err := fv.Histogram("gender")
	if err != nil {
		log.Fatal(err)
	}
	write("stats.svg", viz.HistogramSVG("gender (brush: female)", labels, counts,
		map[int]bool{0: true}, 360))

	if fv.Projection != nil {
		points := make([]viz.ScatterPoint, len(fv.Projection.Points))
		classIdx := eng.Data.Schema.AttrIndex(fv.ClassAttr)
		for i, p := range fv.Projection.Points {
			u := fv.Members[i]
			cls := eng.Data.Users[u].Demo[classIdx]
			points[i] = viz.ScatterPoint{
				X: p[0], Y: p[1], Class: cls,
				Label: eng.Data.Users[u].ID,
			}
		}
		write("focus.svg", viz.ScatterSVG(points, 420, 320))
		fmt.Printf("focus projection: method=%s explained=%.2f\n",
			fv.Projection.Method, fv.Projection.ExplainedRatio)
	}

	// --- HISTORY trail. ----------------------------------------------
	var trail []string
	for _, st := range sess.History() {
		if st.Focal < 0 {
			trail = append(trail, "start")
			continue
		}
		trail = append(trail, eng.GroupLabel(st.Focal))
	}
	write("history.svg", viz.TrailSVG(trail, 720))

	// --- The member table after brushing (§II-B anecdote). ----------
	fmt.Printf("\nselected members (female, most active first) of %q:\n",
		eng.GroupLabel(fv.GroupID))
	for _, row := range fv.Table(5) {
		fmt.Printf("  %-12s %3d actions  %v\n", row.ID, row.NumAct, row.Demo)
	}
}

func write(name, svg string) {
	if err := os.WriteFile(name, []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", name, len(svg))
}
