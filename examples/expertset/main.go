// Expertset reproduces Scenario 1 of the paper (§III, multi-target
// task): a program-committee chair uses VEXUS to assemble an expert
// set of geographically distributed male and female researchers. A
// simulated chair explores the group space, bookmarking recognized
// experts from each visited group, and the run reports how many
// iterations the committee took — the paper claims fewer than 10 on
// average for SIGMOD/VLDB/CIKM-scale committees.
package main

import (
	"fmt"
	"log"

	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/greedy"
	"vexus/internal/rng"
	"vexus/internal/simulate"
)

func main() {
	data, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 2000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultPipelineConfig()
	cfg.Encode = datagen.DBAuthorsEncodeOptions()
	cfg.MinSupportFrac = 0.02
	eng, err := core.Build(data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline: %d groups over %d researchers\n\n", eng.Space.Len(), data.NumUsers())

	for _, venue := range []string{"SIGMOD", "VLDB", "CIKM"} {
		target := simulate.CommitteeTarget(eng, venue, 2, 60)
		quota := 30
		if target.Count() < quota {
			quota = target.Count()
		}
		sess := eng.NewSession(greedy.DefaultConfig())
		res := simulate.RunMT(sess, simulate.MTTask{
			Target:            target,
			Quota:             quota,
			MaxIterations:     20,
			MaxInspectPerStep: 8, // the chair reviews a bounded member table per step
		}, simulate.GreedyPolicy(), rng.New(99))

		fmt.Printf("%s committee: %d candidates, quota %d\n", venue, target.Count(), quota)
		fmt.Printf("  formed in %d iterations (success=%v, collected %d)\n",
			res.Iterations, res.Success, res.Collected)

		// Committee composition report: the diversity dimensions the
		// chair cares about.
		members := sess.Memo().Users()
		genders := map[string]int{}
		countries := map[string]int{}
		gi := data.Schema.AttrIndex("gender")
		ci := data.Schema.AttrIndex("country")
		for _, u := range members {
			if v, ok := data.DemoValue(u, gi); ok {
				genders[v]++
			}
			if v, ok := data.DemoValue(u, ci); ok {
				countries[v]++
			}
		}
		fmt.Printf("  gender mix: %v\n  countries: %d distinct\n\n", genders, len(countries))
	}
}
