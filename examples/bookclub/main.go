// Bookclub reproduces Scenario 2 of the paper (§III, single-target
// task): an avid reader explores BookCrossing-style rating groups
// looking for a discussion group — one she agrees with (readers who
// like her favorite genre) and one she disagrees with. The paper cites
// 80% satisfaction for group-based exploration versus individual
// browsing; this example runs both conditions side by side.
package main

import (
	"fmt"
	"log"

	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/greedy"
	"vexus/internal/simulate"
)

func main() {
	data, err := datagen.BookCrossing(datagen.SmallScale(13))
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultPipelineConfig()
	cfg.Encode = datagen.BookCrossingEncodeOptions()
	cfg.MinSupportFrac = 0.02
	eng, err := core.Build(data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline: %d groups over %d readers, %d ratings\n\n",
		eng.Space.Len(), data.NumUsers(), data.NumActions())

	// The reader's target: a *specific* discussion group — fiction
	// lovers sharing another trait (so it is never in the initial
	// display and must be navigated to).
	targetID := -1
	want := eng.Space.Vocab.Lookup("favgenre", "fiction")
	bestSize := 0
	for _, g := range eng.Space.Groups() {
		if g.Desc.Contains(want) && len(g.Desc) >= 2 && g.Size() > bestSize {
			targetID, bestSize = g.ID, g.Size()
		}
	}
	if targetID < 0 {
		log.Fatal("no specific fiction group mined; lower the support threshold")
	}
	fmt.Printf("hidden target: %q (%d readers)\n\n", eng.GroupLabel(targetID), bestSize)

	task := simulate.STTask{TargetGroup: targetID, MinSimilarity: 0.6, MaxIterations: 15}

	groupBased := simulate.RunSTBatch(eng, greedy.DefaultConfig(), task,
		simulate.NoisyPolicy(0.1), 25, 500)
	fmt.Printf("group-based exploration:  %3.0f%% satisfied, %.1f iterations when satisfied\n",
		groupBased.SuccessRate*100, groupBased.MeanIterations)

	// Baseline: browsing individual profiles, needing enough agreeing
	// readers to convince her a club exists (quota scales with the
	// club size).
	target := eng.Space.Group(targetID).Members
	quota := target.Count() / 10
	if quota < 15 {
		quota = 15
	}
	browse := simulate.RunBrowseBatch(data.NumUsers(), target,
		quota, 7, 15, 25, 500)
	fmt.Printf("individual browsing:      %3.0f%% satisfied (baseline, quota %d)\n\n",
		browse.SuccessRate*100, quota)

	// One concrete session: show the agree/disagree pair the scenario
	// describes.
	sess := eng.NewSession(greedy.DefaultConfig())
	sess.Start()
	if _, err := sess.Explore(targetID); err != nil {
		log.Fatal(err)
	}
	fmt.Println("groups adjacent to the reader's taste:")
	fictionIdx := 0
	for i, g := range datagen.Genres {
		if g == "fiction" {
			fictionIdx = i
		}
	}
	for i, v := range sess.Views("favgenre") {
		verdict := "disagrees" // gender-neutral or other-genre groups
		if len(v.ColorShares) > fictionIdx && v.ColorShares[fictionIdx] >= 0.5 {
			verdict = "agrees"
		}
		fmt.Printf("  %d. [%4d readers, sim %.2f, %s] %s\n",
			i+1, v.Size, v.Similarity, verdict, v.Label)
	}
}
