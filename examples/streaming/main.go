// Streaming demonstrates the paper's stream path (§II-A): when user
// data arrives as a stream rather than a dataset, group discovery runs
// with STREAMMINING (lossy counting over itemsets) and BIRCH (CF-tree
// clustering) instead of LCM. The example replays a rating stream in
// three eras with drifting taste and reports how the frequent groups
// move, plus the bounded memory the stream miner maintains.
package main

import (
	"fmt"
	"log"

	"vexus/internal/datagen"
	"vexus/internal/groups"
	"vexus/internal/mining"
	"vexus/internal/mining/birch"
	"vexus/internal/mining/stream"
)

func main() {
	data, err := datagen.BookCrossing(datagen.SmallScale(21))
	if err != nil {
		log.Fatal(err)
	}
	tx, err := mining.Encode(data, datagen.BookCrossingEncodeOptions())
	if err != nil {
		log.Fatal(err)
	}

	// --- STREAMMINING: process users as an arriving stream. ---------
	m := stream.New(stream.Config{Support: 0.05, Epsilon: 0.005, MaxLen: 2})
	checkpoints := []int{tx.N / 3, 2 * tx.N / 3, tx.N}
	next := 0
	for u := 0; u < tx.N; u++ {
		m.Process(append([]groups.TermID(nil), tx.PerUser[u]...))
		if next < len(checkpoints) && u+1 == checkpoints[next] {
			snap := m.Snapshot()
			fmt.Printf("after %5d users: %3d frequent groups, %5d counters in core\n",
				u+1, len(snap), m.NumCounters())
			for i, fi := range snap {
				if i == 3 {
					break
				}
				fmt.Printf("    %-55s ≥%d users\n", fi.Terms.Label(tx.Vocab), fi.Count)
			}
			next++
		}
	}

	// --- BIRCH: cluster the demographic stream into K groups. -------
	// Clustering works on the low-dimensional demographic embedding;
	// the sparse per-book terms would drown centroid distances in
	// Zipf-tail noise.
	demoTx, err := mining.Encode(data, mining.EncodeOptions{Demographics: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBIRCH global clustering over demographics (K=6):")
	bcfg := birch.DefaultConfig()
	bcfg.K = 6
	bcfg.Threshold = 1.0
	gs, err := birch.New(bcfg).Mine(demoTx)
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range gs {
		fmt.Printf("  [%4d users] %s\n", g.Size(), clip(g.Desc.Label(demoTx.Vocab), 90))
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
