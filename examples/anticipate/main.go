// Anticipate demonstrates the two Fig. 1 extensions: the Prefetcher
// (the paper's "VEXUS … uses [the explorer profile] to anticipate
// follow-up steps and select groups on-the-fly") and the SAVE module
// (session trails serialize as JSON and replay against a rebuilt
// engine). It measures the perceived latency of a click with and
// without anticipation, then saves, restores, and verifies the session.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/greedy"
)

func main() {
	data, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 1500, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	pcfg := core.DefaultPipelineConfig()
	pcfg.Encode = datagen.DBAuthorsEncodeOptions()
	pcfg.MinSupportFrac = 0.02
	eng, err := core.Build(data, pcfg)
	if err != nil {
		log.Fatal(err)
	}

	cfg := greedy.DefaultConfig() // 100 ms optimizer budget

	// --- Without anticipation: every click pays the optimizer. ------
	plain := eng.NewSession(cfg)
	plain.Start()
	t0 := time.Now()
	if _, err := plain.Explore(plain.Shown()[0]); err != nil {
		log.Fatal(err)
	}
	coldMS := time.Since(t0)

	// --- With anticipation: the answer was precomputed. -------------
	sess := eng.NewSession(cfg)
	sess.Start()
	p := core.NewPrefetcher(sess)
	p.PrefetchShown()
	p.Wait() // idle time while the human reads the display

	t0 = time.Now()
	_, cached, err := p.Explore(sess.Shown()[0])
	if err != nil {
		log.Fatal(err)
	}
	warmMS := time.Since(t0)
	fmt.Printf("click latency without anticipation: %8v\n", coldMS.Round(time.Millisecond))
	fmt.Printf("click latency with anticipation:    %8v (cache hit: %v)\n",
		warmMS.Round(time.Microsecond), cached)

	// --- SAVE: persist the trail, replay it elsewhere. ---------------
	if _, _, err := p.Explore(sess.Shown()[0]); err != nil {
		log.Fatal(err)
	}
	if err := sess.BookmarkGroup(sess.Focal()); err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sess.Save(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsaved session: %d bytes of JSON\n", buf.Len())

	restored := eng.NewSession(cfg)
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored: %d history steps, focal %q, %d memo groups\n",
		len(restored.History()), eng.GroupLabel(restored.Focal()),
		len(restored.Memo().Groups()))
}
