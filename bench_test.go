// Benchmarks regenerating the paper's quantitative claims, one per
// experiment in EXPERIMENTS.md (E1–E9) plus the design-decision
// ablations from DESIGN.md §4. cmd/vexus-bench prints the same
// measurements as formatted tables; these testing.B versions give
// ns/op + allocs and run under `go test -bench=. -benchmem`.
package vexus_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/greedy"
	"vexus/internal/groups"
	"vexus/internal/index"
	"vexus/internal/mining"
	"vexus/internal/mining/birch"
	"vexus/internal/mining/lcm"
	"vexus/internal/mining/momri"
	"vexus/internal/mining/stream"
	"vexus/internal/rng"
	"vexus/internal/simulate"
)

// ---------------------------------------------------------------------------
// Shared fixtures (built once; engines are immutable after Build).

var (
	fixOnce sync.Once
	fixEng  *core.Engine // DB-AUTHORS, 1500 users
	fixTx   *mining.Transactions
	fixErr  error
)

func fixtures(b *testing.B) *core.Engine {
	b.Helper()
	fixOnce.Do(func() {
		var d, err = datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 1500, Seed: 42})
		if err != nil {
			fixErr = err
			return
		}
		cfg := core.DefaultPipelineConfig()
		cfg.Encode = datagen.DBAuthorsEncodeOptions()
		cfg.MinSupportFrac = 0.02
		fixEng, fixErr = core.Build(d, cfg)
		if fixErr != nil {
			return
		}
		fixTx, fixErr = mining.Encode(d, datagen.DBAuthorsEncodeOptions())
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fixEng
}

// ---------------------------------------------------------------------------
// E1 — greedy optimizer under different time limits.

func BenchmarkGreedyTimeLimit(b *testing.B) {
	eng := fixtures(b)
	opt := greedy.New(eng.Space, eng.Index)
	focal := eng.Space.Group(0)
	for _, budget := range []time.Duration{
		0, 5 * time.Millisecond, 25 * time.Millisecond, 100 * time.Millisecond,
	} {
		b.Run(budget.String(), func(b *testing.B) {
			cfg := greedy.DefaultConfig()
			cfg.TimeLimit = budget
			cfg.FeedbackWeight = 0
			var lastObj float64
			for i := 0; i < b.N; i++ {
				sel, err := opt.SelectNext(focal, nil, cfg)
				if err != nil {
					b.Fatal(err)
				}
				lastObj = sel.Objective
			}
			b.ReportMetric(lastObj, "objective")
		})
	}
}

// ---------------------------------------------------------------------------
// E2 — index construction at different materialization fractions.

func BenchmarkIndexMaterialization(b *testing.B) {
	eng := fixtures(b)
	for _, frac := range []float64{0.01, 0.10, 1.00} {
		b.Run(fmt.Sprintf("frac=%.2f", frac), func(b *testing.B) {
			var mem int
			for i := 0; i < b.N; i++ {
				ix, err := index.Build(eng.Space, frac)
				if err != nil {
					b.Fatal(err)
				}
				mem = ix.MemoryBytes()
			}
			b.ReportMetric(float64(mem)/(1<<20), "MB")
		})
	}
}

// ---------------------------------------------------------------------------
// Parallel offline build: index materialization sharded across worker
// counts. Every worker count produces a bit-identical index (the
// equivalence test in internal/index holds that); this benchmark
// measures the wall-clock scaling. Speedup tops out at the physical
// core count — on a 1-core runner all worker counts time alike.

func BenchmarkParallelIndexBuild(b *testing.B) {
	eng := fixtures(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := index.BuildParallel(eng.Space, 0.10, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Parallel discovery: lcm.MineParallel fans the top-level PPC
// subtrees over the worker pool. Every worker count yields the exact
// sequential group list (the equivalence suite in internal/mining/lcm
// holds that); this benchmark measures wall-clock scaling, which tops
// out at the physical core count — on a 1-core runner all worker
// counts time alike.

func BenchmarkParallelLCM(b *testing.B) {
	fixtures(b)
	tx := fixTx
	opts := mining.Options{MinSupport: 20, MaxLen: 4}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				gs, err := lcm.New(opts).MineParallel(tx, workers)
				if err != nil {
					b.Fatal(err)
				}
				n = len(gs)
			}
			b.ReportMetric(float64(n), "groups")
		})
	}
}

// ---------------------------------------------------------------------------
// Parallel simulation: an E4-style MT campaign sharded over workers.
// Aggregates are bit-identical to the sequential batch at any count.

func BenchmarkParallelMTBatch(b *testing.B) {
	eng := fixtures(b)
	target := simulate.CommitteeTarget(eng, "SIGMOD", 2, 60)
	quota := 30
	if target.Count() < quota {
		quota = target.Count()
	}
	task := simulate.MTTask{
		Target: target, Quota: quota,
		MaxIterations: 12, MaxInspectPerStep: 8,
	}
	cfg := greedy.DefaultConfig()
	cfg.TimeLimit = 0
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				simulate.RunMTBatchParallel(eng, cfg, task,
					simulate.NoisyPolicy(0.1), 8, 42, workers)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E3 — closed-group mining as the term grid grows.

func BenchmarkGroupSpace(b *testing.B) {
	for _, cfg := range []struct{ attrs, values int }{
		{3, 5}, {4, 5}, {5, 5},
	} {
		b.Run(fmt.Sprintf("a%dv%d", cfg.attrs, cfg.values), func(b *testing.B) {
			r := rng.New(7)
			vocab := groups.NewVocab()
			ids := make([][]groups.TermID, cfg.attrs)
			for a := range ids {
				ids[a] = make([]groups.TermID, cfg.values)
				for v := range ids[a] {
					ids[a][v] = vocab.Intern(fmt.Sprintf("a%d", a), fmt.Sprintf("v%d", v))
				}
			}
			perUser := make([][]groups.TermID, 2000)
			for u := range perUser {
				terms := make([]groups.TermID, cfg.attrs)
				for a := 0; a < cfg.attrs; a++ {
					terms[a] = ids[a][r.Intn(cfg.values)]
				}
				perUser[u] = terms
			}
			tx := mining.NewTransactions(vocab, perUser)
			b.ResetTimer()
			var n int
			for i := 0; i < b.N; i++ {
				gs, err := lcm.New(mining.Options{MinSupport: 20}).Mine(tx)
				if err != nil {
					b.Fatal(err)
				}
				n = len(gs)
			}
			b.ReportMetric(float64(n), "groups")
		})
	}
}

// ---------------------------------------------------------------------------
// E4 — one full committee-formation session.

func BenchmarkExpertSetFormation(b *testing.B) {
	eng := fixtures(b)
	target := simulate.CommitteeTarget(eng, "SIGMOD", 2, 60)
	quota := 30
	if target.Count() < quota {
		quota = target.Count()
	}
	task := simulate.MTTask{
		Target: target, Quota: quota,
		MaxIterations: 20, MaxInspectPerStep: 8,
	}
	cfg := greedy.DefaultConfig()
	cfg.TimeLimit = 20 * time.Millisecond
	var iters float64
	for i := 0; i < b.N; i++ {
		res := simulate.RunMT(eng.NewSession(cfg), task,
			simulate.GreedyPolicy(), rng.New(uint64(i)+1))
		iters = float64(res.Iterations)
	}
	b.ReportMetric(iters, "iterations")
}

// ---------------------------------------------------------------------------
// E5 — one discussion-group search session.

func BenchmarkDiscussionGroups(b *testing.B) {
	eng := fixtures(b)
	// Mid-sized group as the hidden target.
	ids := make([]int, eng.Space.Len())
	for i := range ids {
		ids[i] = i
	}
	eng.Space.SortBySize(ids)
	task := simulate.STTask{
		TargetGroup: ids[len(ids)/3], MinSimilarity: 0.6, MaxIterations: 15,
	}
	cfg := greedy.DefaultConfig()
	cfg.TimeLimit = 20 * time.Millisecond
	var found float64
	for i := 0; i < b.N; i++ {
		res := simulate.RunST(eng.NewSession(cfg), task,
			simulate.GreedyPolicy(), rng.New(uint64(i)+1))
		if res.Success {
			found++
		}
	}
	b.ReportMetric(found/float64(b.N), "successRate")
}

// ---------------------------------------------------------------------------
// E6 — optimizer latency as k grows.

func BenchmarkKSweep(b *testing.B) {
	eng := fixtures(b)
	opt := greedy.New(eng.Space, eng.Index)
	focal := eng.Space.Group(0)
	for _, k := range []int{3, 7, 15} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			cfg := greedy.DefaultConfig()
			cfg.K = k
			cfg.TimeLimit = 0 // pure construction cost
			for i := 0; i < b.N; i++ {
				if _, err := opt.SelectNext(focal, nil, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E7 — per-interaction latency.

func BenchmarkInteractionLatency(b *testing.B) {
	eng := fixtures(b)
	cfg := greedy.DefaultConfig()
	cfg.TimeLimit = 10 * time.Millisecond

	b.Run("explore", func(b *testing.B) {
		sess := eng.NewSession(cfg)
		sess.Start()
		gid := sess.Shown()[0]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Explore(gid); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("focus", func(b *testing.B) {
		sess := eng.NewSession(cfg)
		sess.Start()
		gid := sess.Shown()[0]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Focus(gid, "gender"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("brush", func(b *testing.B) {
		sess := eng.NewSession(cfg)
		sess.Start()
		fv, err := sess.Focus(sess.Shown()[0], "gender")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := fv.Brush("gender", "female"); err != nil {
				b.Fatal(err)
			}
			if err := fv.ClearBrush("gender"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("backtrack", func(b *testing.B) {
		sess := eng.NewSession(cfg)
		sess.Start()
		if _, err := sess.Explore(sess.Shown()[0]); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sess.Backtrack(1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bookmark", func(b *testing.B) {
		sess := eng.NewSession(cfg)
		sess.Start()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sess.BookmarkGroup(i % eng.Space.Len()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// E8 — feedback ablation: selection cost and outcome with the
// personalization term on and off.

func BenchmarkFeedbackAblation(b *testing.B) {
	eng := fixtures(b)
	for _, cond := range []struct {
		name   string
		weight float64
	}{{"on", 0.25}, {"off", 0}} {
		b.Run(cond.name, func(b *testing.B) {
			cfg := greedy.DefaultConfig()
			cfg.TimeLimit = 10 * time.Millisecond
			cfg.FeedbackWeight = cond.weight
			sess := eng.NewSession(cfg)
			sess.Start()
			gid := sess.Shown()[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Explore(gid); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E9 — the offline pipeline end to end (small scale; -scale paper in
// cmd/vexus-bench covers the full 1M-rating run).

func BenchmarkOfflinePipeline(b *testing.B) {
	d, err := datagen.BookCrossing(datagen.SmallScale(42))
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultPipelineConfig()
	cfg.Encode = datagen.BookCrossingEncodeOptions()
	cfg.MinSupportFrac = 0.02
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Design ablation: the four miners on identical transactions.

func BenchmarkMiners(b *testing.B) {
	fixtures(b)
	tx := fixTx
	miners := []mining.Miner{
		lcm.New(mining.Options{MinSupport: 30, MaxLen: 4}),
		momri.New(momri.DefaultConfig(30)),
		stream.New(stream.Config{Support: 0.02, Epsilon: 0.002, MaxLen: 3}),
		birch.New(birch.DefaultConfig()),
	}
	for _, m := range miners {
		b.Run(m.Name(), func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				// stream miners accumulate state; fresh instance per run.
				var miner mining.Miner
				switch m.Name() {
				case "streammining":
					miner = stream.New(stream.Config{Support: 0.02, Epsilon: 0.002, MaxLen: 3})
				case "alpha-momri":
					miner = momri.New(momri.DefaultConfig(30))
				case "birch":
					miner = birch.New(birch.DefaultConfig())
				default:
					miner = lcm.New(mining.Options{MinSupport: 30, MaxLen: 4})
				}
				gs, err := miner.Mine(tx)
				if err != nil {
					b.Fatal(err)
				}
				n = len(gs)
			}
			b.ReportMetric(float64(n), "groups")
		})
	}
}
