// Package vexus is a from-scratch Go implementation of VEXUS
// ("Exploration of User Groups in VEXUS", ICDE 2018): an interactive
// framework for exploring user data through automatically discovered
// user groups.
//
// The public surface lives under internal/ packages wired together by
// internal/core (the engine and session), with executables in cmd/ and
// runnable scenarios in examples/. bench_test.go at this root holds one
// benchmark per experiment in EXPERIMENTS.md; cmd/vexus-bench prints
// the corresponding paper-style tables.
//
// # Concurrency
//
// internal/parallel is the worker-pool primitive behind every
// parallelized hot path: bounded fan-out over index ranges
// (parallel.Range / parallel.ForEach, runtime.NumCPU() workers by
// default) with determinism guaranteed by slot-writes — each unit of
// work owns its output slot and per-worker scratch, so any worker
// count produces bit-identical results. The offline pipeline uses it
// in groups.NewSpaceParallel (user→groups inversion),
// Space.ComputeStatsParallel, and index.BuildParallel (per-group
// inverted lists); the online path uses it to score large candidate
// pools in the greedy optimizer (greedy.Config.Workers).
//
// Group discovery and evaluation parallelize the same way:
// lcm.MineParallel fans the top-level PPC enumeration subtrees over
// the pool (mining.ParallelOptions / mining.MineParallel is the
// algorithm-independent entry point) with a shared atomic budget
// tracker preserving the exact MaxGroups truncation semantics of the
// sequential run, and simulate.RunMTBatchParallel /
// RunSTBatchParallel / RunBrowseBatchParallel shard simulation
// campaigns run-per-slot with aggregates reduced in run order — all
// bit-identical to their sequential counterparts at any worker count.
//
// Engines are immutable values and safe to share: core.Build returns
// a finished engine, and live ingestion (see Live datasets) never
// mutates one — Engine.Ingest builds a successor version and the old
// engine keeps serving until nobody holds it. Sessions are
// single-explorer state. cmd/vexus-server multiplexes many
// explorers by giving each an isolated Session behind POST
// /api/v1/sessions (endpoints address it via its session id), with
// per-session locking, a TTL sweeper for idle sessions, and LRU
// eviction at the session cap.
//
// # The action layer
//
// internal/action is the single write path to a session: a typed,
// versioned vocabulary of the paper's interactions (start, startFrom,
// explore, backtrack, focus, brush, unlearn, unlearnUser,
// bookmarkGroup, bookmarkUser) with one dispatcher, action.Apply, and
// a batch form, ApplyAll, that reports per-action error positions.
// The JSON codec is strict both ways — unknown fields, unknown ops
// and misplaced operands are rejected — so stored trails cannot rot
// silently. Every successful Apply returns a Diff computed against
// the pre-action state (shown groups added/removed, focal change,
// CONTEXT/MEMO deltas, mutation counter): the server's POST
// /api/v1/sessions/{sid}/actions returns these diffs per batch entry
// (?full=1 for a full snapshot), and the /api/state ETag is derived
// from the same mutation counter, so diff consumers always hold a
// current validator. Four frontends share the path: the HTTP server
// (the bundled page posts v1 batches; the legacy one-action mutation
// shims are gone), session persistence (the v2 SAVE format serializes
// the complete action log and still loads lossy v1 files), the vexus
// CLI's -script replay, and internal/simulate, whose campaigns emit
// their trails as replayable action logs.
//
// # Warm starts and the dataset catalog
//
// internal/store is the layer between the offline pipeline and online
// serving: it serializes a built engine into a versioned binary
// snapshot — little-endian, length-prefixed CRC-checked sections
// (schema, users, items, actions, vocab, transactions, groups, index,
// meta), bitsets as raw word arrays, no reflection — and loads it back
// bit-identical to a fresh core.Build. The header carries a SHA-256
// content address of the dataset + pipeline config
// (store.ComputeFingerprint); store.BuildOrLoad serves a snapshot only
// on an exact match and otherwise rebuilds and overwrites it, so a
// stale snapshot can cost time but never correctness. Group and index
// sections embed per-record offset tables and decode in parallel
// (slot-writes again); derived state (user→group inversion, tid-lists,
// size order) is reconstructed deterministically rather than stored.
// The cmd/vexus and cmd/vexus-server -snapshot flags wire this in, and
// the vexus-bench p2 experiment records the cold-vs-warm speedup.
//
// On top of it, cmd/vexus-server -datasets serves a whole catalog: a
// directory of <name>.json dataset specs with <name>.snap snapshots
// alongside. Engines build or warm-load lazily on the first request
// naming them (POST /api/session?dataset=, default dataset when the
// parameter is absent), concurrent first requests share one build, at
// most -max-engines engines stay resident (LRU, session-free datasets
// evicted first), and each dataset owns an isolated session registry.
// GET /api/datasets lists residency; GET /api/state carries an ETag
// derived from the session's mutation counter and honors
// If-None-Match with 304, so pollers stop re-downloading unchanged
// state snapshots.
//
// # Sharded session serving
//
// The HTTP server itself lives in internal/serve (cmd/vexus-server is
// flag wiring), and internal/cluster scales it across processes. The
// cluster contract has three legs:
//
//	Hashing    — session ids map to shards by rendezvous (HRW)
//	             hashing: stateless (any party knowing the shard
//	             names computes the same owner) and minimally
//	             disruptive (a shard joining or leaving reassigns
//	             only the sessions it wins or held).
//	Migration  — a session is its action log, so moving one is
//	             export → replay → delete: the gateway exports the
//	             v2 trail from the old owner, the new owner replays
//	             it through action.Apply under the same session id,
//	             and the source copy is deleted only after the
//	             import verifies. A failed migration fails closed —
//	             the source keeps serving.
//	Continuity — replaying n actions leaves the mutation counter at
//	             n, so the `"<sid>.<mutations>"` ETag stream is
//	             unbroken across a move; clients cannot tell their
//	             session migrated. Byte-identical states require
//	             bit-identical engines on every shard (same dataset
//	             spec; core.Build/store.Load guarantee the rest at
//	             any worker count) and the deterministic optimizer
//	             config (TimeLimit = 0, which -shard mode forces),
//	             pinned by equivalence tests at workers 1, 2 and 8.
//
// A Gateway owns routing and topology but no session state: it
// terminates the public API, proxies sticky-by-sid (creation hashes a
// gateway-minted sid, so placement and routing always agree),
// aggregates /api/sessions and /api/datasets across shards without
// double counting, reports health and residency on GET
// /api/v1/cluster, and rebalances on POST /api/v1/cluster/drain and
// /join — blocking traffic only per migrating session. Shards are
// ordinary servers (single-dataset or catalog) started with -shard,
// which enables the /internal/cluster migration surface; gateways
// start with -cluster gateway -shards host:port,.... In-process
// shards (cluster.LocalShard) stand up a whole cluster in one test or
// benchmark binary; vexus-bench -e p3 measures the gateway hop and
// the per-session migration latency.
//
// # Cluster membership
//
// internal/membership makes the cluster self-managing: the shard set
// is a live roster, not a static flag. Each shard runs a
// membership.Announcer that heartbeats POST /internal/cluster/heartbeat
// to the gateway (default every 2s, -announce / -heartbeat), carrying
// its address, live session count and per-dataset engine versions; the
// ack piggybacks the topology epoch and the full roster back, so one
// round trip refreshes liveness in both directions. The gateway's
// membership.Directory tracks each member through alive → suspect →
// down: suspicion (silence past -suspect-after) is a warning — the
// member stays routable — while down (past -down-after) fails its
// routes closed: the member leaves the routing set, its sessions read
// as expired rather than ever being misrouted, and a later heartbeat
// re-admits it. A member that was never announced (static -shards
// entries before their first heartbeat) is exempt from detection.
//
// Routing state is durable and versioned. The directory maintains a
// monotonic topology epoch that advances only when the routing set
// changes — seeding the static members counts once, then each join,
// down, recovery and removal — never on metadata heartbeats or suspect
// transitions. Two gateways at the same epoch route every session id
// identically (rendezvous hashing is a pure function of the member
// set). With -routes the table (epoch + roster + states) persists via
// atomic rename on every change and reloads on restart: the gateway
// resumes at the saved epoch with zero re-resolution requests to the
// shards, down members stay down (fail closed across restarts), and
// reloaded-alive members get a fresh detection grace. A corrupt table
// refuses to load rather than route from garbage.
//
// Joins are warm: a joining shard never builds its own engine.
// Started with -shard -warm it computes only the dataset fingerprint
// (its root of trust) and answers 503 to every create and readiness
// probe. POST /api/v1/cluster/join makes the gateway stream a current
// member's engine snapshot (GET /internal/cluster/snapshot, the
// internal/store section codec) straight into the joiner (POST
// /internal/cluster/warm) without buffering; the joiner installs only
// after store.LoadFresh verifies the stream's fingerprint chain
// against its own locally computed base — a truncated transfer, torn
// section or wrong dataset can never install, and a failed warm leaves
// the joiner out of the ring with the epoch unmoved. Only after the
// snapshot verifies does the member enter the routing set and receive
// rebalanced sessions.
//
// The whole cluster-internal surface — migration, snapshot, warm,
// heartbeat, metrics — authenticates with a shared secret
// (-cluster-secret / $VEXUS_CLUSTER_SECRET, the X-Vexus-Cluster-Secret
// header, constant-time compare; empty disables). The public API stays
// open. Membership observability rides the telemetry registry:
// vexus_cluster_epoch and vexus_cluster_members{state=} gauges on the
// gateway scrape, vexus_cluster_warmjoin_bytes_total and
// vexus_cluster_warmjoin_seconds metering transfers, the shard-side
// vexus_cluster_heartbeat_rtt_seconds histogram, and GET
// /api/v1/cluster reporting epoch, roster states and per-shard health;
// a gateway's readyz names down members and the operator action that
// clears them. examples/scripts/README.md walks a three-shard cluster
// through warm join, kill and recovery end to end.
//
// # Live diff streams
//
// GET /api/v1/sessions/{sid}/events is the push half of the action
// layer: a Server-Sent Events stream of the same action.Diff objects
// the POST path returns, one `event: diff` per mutation. The event id
// IS the session's mutation counter IS the ETag suffix — the three
// cursors are one number, so a client holding any of them knows
// exactly where it stands. Multiple clients on one session converge:
// every subscriber sees every diff in mutation order (the publish
// hook fires inside the apply critical section), which is what makes
// collaborative exploration work (internal/simulate.RunCollaborative
// pins N diff-tracking views byte-identical to the authoritative
// session).
//
// Reconnection is resumable: send the last seen id via the standard
// Last-Event-ID header (or ?lastEventID= for plain curl) and the
// server replays the missed diffs from a bounded per-session ring
// (256 by default, serve.Config.StreamReplay). If the gap exceeds
// the ring — or a fresh client attaches with no cursor — the stream
// opens with a single `event: resync` carrying a full state snapshot
// at the current id instead; clients must treat resync as
// authoritative replacement, never as a delta. Either way the first
// frame positions the client at the head, and subsequent diffs apply
// cleanly.
//
// Slow consumers never block the write path: each subscriber owns a
// bounded queue (serve.Config.StreamQueue) fed by a non-blocking
// send, and a subscriber that overflows is dropped to the resync
// path rather than applying backpressure to the session. Streams end
// loudly, not silently: a terminal `event: closed` frame carries a
// reason — "deleted", "dataset evicted", "server closing", or
// "migrated", which tells the client to reconnect with its cursor
// (the new owner's replayed ring serves the missed diffs, so the
// stream continues across a migration without duplicates or gaps;
// sessions with live subscribers are also pinned against TTL/LRU
// eviction). The gateway proxies the stream flush-per-write and
// releases its routing latch once attached, so an open stream never
// stalls a drain. Comment heartbeats (`:hb`) keep idle connections
// alive through proxies. vexus-bench -e p4 measures push latency and
// fan-out cost.
//
// # Live datasets
//
// Datasets grow after deployment. Engine.Ingest folds a batch of new
// users and actions into a copy-on-write augmented dataset
// (dataset.Append) and re-runs the full deterministic pipeline, so
// the successor engine is bit-identical to core.Build over the
// augmented data — the global encodings (top items, activity
// quantiles) are recomputed, not approximated. Engine.Version counts
// the generations (1 + ingested batches) and Engine.Lineage records
// each batch's content digest. Engine.IngestPreview is the lossy
// sibling: it dry-runs the augmented stream through the
// internal/mining/stream lossy-counting miner (Jin & Agrawal bounds)
// without committing anything.
//
// Snapshots absorb ingests incrementally: store.AppendDeltaFile
// appends a DLTA section (the batch in its canonical binary encoding,
// length-prefixed and CRC-checked like every other section) and
// re-points the header fingerprint at the new chain head —
// store.ChainFingerprint hashes base fingerprint and batch digests
// into a verifiable lineage, so a half-written append or a foreign
// delta reads as ErrStale, never as wrong data. Loading replays
// pending deltas through one rebuild; store.BuildOrLoad compacts the
// file in place once enough deltas accumulate (store.CompactThreshold).
//
// Over HTTP, POST /api/v1/datasets/{name}/ingest commits a batch
// (?preview=1 dry-runs it). Batches are sequence-numbered against the
// engine version — replays of an applied seq are acknowledged
// idempotently, gaps are rejected with 409 — and the delta is made
// durable before the new engine becomes visible. Existing sessions
// stay pinned to the version they started on; only sessions whose
// shown or focal groups the new data actually touches
// (core.GroupTouched compares across versions by description) receive
// an advisory id-less `event: notice` on their SSE stream, so diff
// ids and `"<sid>.<mutations>"` ETags remain seamless for everyone.
// Migration honors the pin: a session export names its engine
// version, registries retain a bounded history of superseded engines,
// and the importer replays the trail against that exact generation —
// so draining a shard after an ingest moves sessions without
// re-aiming them at the new version.
// GET /api/datasets reports each resident engine's version. In a
// cluster the gateway is the sequencer: it fans the batch to every
// shard in sorted order, pins the seq the first shard assigns, and
// verifies all shards report the same resulting version — same batch,
// same seq, deterministic pipeline ⇒ bit-identical engines on every
// shard. vexus-bench -e p5 measures ingest throughput, version-swap
// latency, and base+delta vs compacted warm loads.
//
// # Observability
//
// internal/telemetry is a dependency-free metrics and tracing layer:
// atomic counters, gauges, fixed-bucket histograms (with quantile
// estimation by linear interpolation inside the containing bucket),
// label vectors, and a hand-rolled Prometheus text-format encoder
// (version 0.0.4) — stdlib only, scrapes byte-stable under sorted
// family and label order. Every server and gateway owns a private
// registry (serve.Config.Telemetry / cluster.GatewayConfig.Telemetry;
// nil means a fresh one), exposed on GET /metrics uninstrumented so
// scrapes never inflate request counts. telemetry.Disabled turns every
// instrument into a nil no-op and unwraps the HTTP middleware
// entirely; vexus-bench -e p6 pins the instrumented-vs-disabled
// overhead under 2% on the hot serving path.
//
// The serve layer exports request counts and latency histograms per
// route and status (vexus_http_requests_total,
// vexus_http_request_seconds), per-action-type apply latency
// (vexus_action_apply_seconds{op=}), session lifecycle counters and
// the live-session/resident-engine gauges (evaluated at scrape time),
// engine build/load timings and singleflight build waits, SSE stream
// gauges (subscribers, resumes, resyncs, overflow drops), and ingest
// metrics (batches, rows by kind, rebuild/swap seconds, per-dataset
// delta-chain length). The gateway mirrors the middleware under
// vexus_gateway_* and adds migration count/latency and the
// route-latch wait histogram; GET /api/v1/cluster carries a rollup
// summing every reachable shard's snapshot series-by-series (bucket
// series filtered).
//
// Requests are traceable across shards: the middleware mints an
// X-Vexus-Trace id (or adopts the caller's), reflects it on the
// response, and the gateway forwards it on every proxy hop — a
// migration mints one id and threads it through export, import and
// delete, so the same trace appears in both shards' span logs. Span
// records go through log/slog at Debug level (-log debug); liveness
// and readiness live at GET /api/v1/healthz and /api/v1/readyz (a
// gateway's readyz polls every shard and names the first unreachable
// one), and -pprof mounts net/http/pprof under /debug/pprof/.
//
// # Load and chaos harness
//
// internal/loadsim turns the whole stack into one deterministic
// experiment: a synthetic population of analysts (Zipf rank-frequency
// arrival rates, an explore/backtrack/focus+brush behavior mix drawn
// from per-user rng.Derive streams) drives a multi-shard in-process
// cluster — real gateway, real cluster.LocalShard workers, real v1
// action batches and SSE subscriptions — under a tick-based
// latency/queue model, while a scripted fault schedule (kill a shard
// mid-trail, partition until the detector fires, bounce the gateway
// against its durable route table, drain, force an engine eviction)
// runs against it. The cluster lives entirely on an injected virtual
// clock with manual membership sweeps, session ids are harness-minted,
// and every Summary accumulator folds in fixed sequential order, so
// one Config produces a bit-identical Summary at any worker count —
// the equivalence suite pins workers 1, 2 and 8 under the race
// detector.
//
// The Summary records p50/p99/p99.9 modeled action latency (per-shard
// telemetry.HistogramSnapshot instances merged via telemetry.Merge),
// queue depths, migration-under-churn and replay cost, eviction
// counts scraped from each shard's registry, SSE delivery and close
// reasons — and a set of fail-closed invariants that must all read
// zero: no session answered by the wrong owner, no ETag
// (`"<sid>.<mutations>"`) discontinuity for survivors, epoch bumps
// exactly on routing-set changes, no lost sid ever answering again
// (fail-open ghosts), gateway restarts preserving the persisted
// epoch. vexus-bench -e p7 runs it as an experiment (writing
// BENCH_cluster_scale.json), and -baseline gates that run against a
// previous note's regression metrics with a percentage threshold,
// exiting non-zero past it.
package vexus
