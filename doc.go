// Package vexus is a from-scratch Go implementation of VEXUS
// ("Exploration of User Groups in VEXUS", ICDE 2018): an interactive
// framework for exploring user data through automatically discovered
// user groups.
//
// The public surface lives under internal/ packages wired together by
// internal/core (the engine and session), with executables in cmd/ and
// runnable scenarios in examples/. bench_test.go at this root holds one
// benchmark per experiment in EXPERIMENTS.md; cmd/vexus-bench prints
// the corresponding paper-style tables.
package vexus
