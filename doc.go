// Package vexus is a from-scratch Go implementation of VEXUS
// ("Exploration of User Groups in VEXUS", ICDE 2018): an interactive
// framework for exploring user data through automatically discovered
// user groups.
//
// The public surface lives under internal/ packages wired together by
// internal/core (the engine and session), with executables in cmd/ and
// runnable scenarios in examples/. bench_test.go at this root holds one
// benchmark per experiment in EXPERIMENTS.md; cmd/vexus-bench prints
// the corresponding paper-style tables.
//
// # Concurrency
//
// internal/parallel is the worker-pool primitive behind every
// parallelized hot path: bounded fan-out over index ranges
// (parallel.Range / parallel.ForEach, runtime.NumCPU() workers by
// default) with determinism guaranteed by slot-writes — each unit of
// work owns its output slot and per-worker scratch, so any worker
// count produces bit-identical results. The offline pipeline uses it
// in groups.NewSpaceParallel (user→groups inversion),
// Space.ComputeStatsParallel, and index.BuildParallel (per-group
// inverted lists); the online path uses it to score large candidate
// pools in the greedy optimizer (greedy.Config.Workers).
//
// Group discovery and evaluation parallelize the same way:
// lcm.MineParallel fans the top-level PPC enumeration subtrees over
// the pool (mining.ParallelOptions / mining.MineParallel is the
// algorithm-independent entry point) with a shared atomic budget
// tracker preserving the exact MaxGroups truncation semantics of the
// sequential run, and simulate.RunMTBatchParallel /
// RunSTBatchParallel / RunBrowseBatchParallel shard simulation
// campaigns run-per-slot with aggregates reduced in run order — all
// bit-identical to their sequential counterparts at any worker count.
//
// Engines are immutable after core.Build and safe to share; Sessions
// are single-explorer state. cmd/vexus-server multiplexes many
// explorers by giving each an isolated Session behind POST
// /api/session (endpoints address it via `sid`), with per-session
// locking, a TTL sweeper for idle sessions, and LRU eviction at the
// session cap.
package vexus
